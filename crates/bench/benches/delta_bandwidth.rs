//! Delta vs full-state replication bandwidth: bytes shipped and events/sec
//! as the gossip mesh grows from 5 to 15 to 50 replicas.
//!
//! Each size runs the same seeded `gossip` scenario (50 is the corpus
//! entry `gossip_50`) twice — once with `StateDriver` shipping full
//! PN-Counter snapshots, once with `DeltaDriver` shipping joined delta
//! batches — under the same wire-size model (`DeltaCrdt::state_bytes` /
//! `delta_bytes`, 12-byte headers both ways). The deterministic byte
//! totals are baked into the benchmark names
//! (`...{n}rep_{kB}kB`), so the JSON report carries both the time per run
//! and the bandwidth each transport paid; the pre-run print shows the
//! ratio directly and asserts the delta transport ships strictly fewer
//! bytes at every size.
//!
//! An LWW-Element-Set pair at 50 replicas shows the gap widening when
//! full snapshots accumulate history (every pair ever written) while
//! deltas stay proportional to the unacknowledged tail.
//!
//! Run with `cargo bench -p ral-bench --bench delta_bandwidth`.

use ral_bench::{bench_group, bench_main, BenchmarkId, Criterion};
use ral_crdts::state::lww_element_set::{LwwElementSet, LwwSetState};
use ral_crdts::state::pn_counter::{PnCounter, PnState};
use ral_runtime::delta::{DeltaConfig, DeltaCrdt};
use ral_sim::driver::{DeltaDriver, Driver, StateDriver};
use ral_sim::{scenario, sim};
use ral_verify::workloads;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 3] = [5, 15, 50];
const SEED: u64 = 7;

fn pn_state_bytes(s: &PnState) -> usize {
    PnCounter.state_bytes(s)
}

fn lww_state_bytes(s: &LwwSetState<u8>) -> usize {
    LwwElementSet::<u8>::new().state_bytes(s)
}

/// One full-state run: returns `(payload_bytes, events)`.
fn full_run(n: usize) -> (u64, usize) {
    let sc = scenario::gossip(n);
    let mut driver = StateDriver::new(PnCounter, n, |rng, _, _| Some(workloads::pn_counter(rng)))
        .with_sizer(pn_state_bytes);
    let run = sim::run(&mut driver, &sc.cfg, SEED);
    assert!(driver.converged());
    (run.stats.payload_bytes, run.stats.events)
}

/// One delta run: returns `(payload_bytes, events)`.
fn delta_run(n: usize) -> (u64, usize) {
    let sc = scenario::gossip(n);
    let mut driver = DeltaDriver::new(PnCounter, DeltaConfig::default(), n, |rng, _, _| {
        Some(workloads::pn_counter(rng))
    });
    let run = sim::run(&mut driver, &sc.cfg, SEED);
    assert!(driver.converged());
    (run.stats.payload_bytes, run.stats.events)
}

fn lww_full_run(n: usize) -> u64 {
    let sc = scenario::gossip(n);
    let mut driver = StateDriver::new(LwwElementSet::<u8>::new(), n, |rng, _, _| {
        Some(workloads::lww_element_set(rng))
    })
    .with_sizer(lww_state_bytes);
    let run = sim::run(&mut driver, &sc.cfg, SEED);
    assert!(driver.converged());
    run.stats.payload_bytes
}

fn lww_delta_run(n: usize) -> u64 {
    let sc = scenario::gossip(n);
    let mut driver = DeltaDriver::new(
        LwwElementSet::<u8>::new(),
        DeltaConfig::default(),
        n,
        |rng, _, _| Some(workloads::lww_element_set(rng)),
    );
    let run = sim::run(&mut driver, &sc.cfg, SEED);
    assert!(driver.converged());
    run.stats.payload_bytes
}

fn pn_counter_bandwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_bandwidth/pn_counter");
    group.sample_size(11);
    for n in SIZES {
        let start = Instant::now();
        let (full_bytes, events) = full_run(n);
        let full_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let (delta_bytes, _) = delta_run(n);
        let delta_secs = start.elapsed().as_secs_f64();
        assert!(
            delta_bytes < full_bytes,
            "{n} replicas: delta shipped {delta_bytes} B, full-state {full_bytes} B"
        );
        eprintln!(
            "delta_bandwidth: pn_counter at {n:>2} replicas — full {full_bytes} B, \
             delta {delta_bytes} B ({:.1}x less), ~{:.0}/{:.0} events/sec",
            full_bytes as f64 / delta_bytes as f64,
            events as f64 / full_secs,
            events as f64 / delta_secs,
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("full/{n}rep_{}kB", full_bytes / 1024)),
            &n,
            |b, &n| b.iter(|| black_box(full_run(n))),
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("delta/{n}rep_{}kB", delta_bytes / 1024)),
            &n,
            |b, &n| b.iter(|| black_box(delta_run(n))),
        );
    }
    group.finish();
}

fn lww_set_bandwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("delta_bandwidth/lww_element_set");
    group.sample_size(11);
    let n = 50;
    let full_bytes = lww_full_run(n);
    let delta_bytes = lww_delta_run(n);
    assert!(
        delta_bytes < full_bytes,
        "{n} replicas: delta shipped {delta_bytes} B, full-state {full_bytes} B"
    );
    eprintln!(
        "delta_bandwidth: lww_element_set at {n} replicas — full {full_bytes} B, \
         delta {delta_bytes} B ({:.1}x less)",
        full_bytes as f64 / delta_bytes as f64,
    );
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("full/{n}rep_{}kB", full_bytes / 1024)),
        &n,
        |b, &n| b.iter(|| black_box(lww_full_run(n))),
    );
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("delta/{n}rep_{}kB", delta_bytes / 1024)),
        &n,
        |b, &n| b.iter(|| black_box(lww_delta_run(n))),
    );
    group.finish();
}

bench_group!(delta_bandwidth, pn_counter_bandwidth, lww_set_bandwidth);
bench_main!(delta_bandwidth);
