//! The Figure 12 table as a benchmark: each row's full verification
//! pipeline (proof obligations + history model-checking), timed per data
//! type, and the rendered table printed once at the end.
//!
//! Run with `cargo bench -p ral-bench --bench fig12_table`.

use ral_bench::{bench_group, bench_main, Criterion};
use ral_verify::table;
use std::hint::black_box;

const HISTORIES: u64 = 5;
const SEED: u64 = 0xBE7C;

fn bench_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    macro_rules! row {
        ($name:literal, $f:path) => {
            group.bench_function($name, |b| {
                b.iter(|| {
                    let row = $f(HISTORIES, SEED);
                    assert!(row.verified(), "{} failed", row.name);
                    black_box(row)
                })
            });
        };
    }
    row!("counter", table::counter_row);
    row!("pn_counter", table::pn_counter_row);
    row!("lww_register", table::lww_register_row);
    row!("mv_register", table::mv_register_row);
    row!("lww_element_set", table::lww_element_set_row);
    row!("two_phase_set", table::two_phase_set_row);
    row!("or_set", table::or_set_row);
    row!("rga", table::rga_row);
    row!("wooki", table::wooki_row);
    group.finish();

    // Print the reproduced table once, alongside the timings.
    let rows = table::fig12_rows(HISTORIES, SEED);
    println!("\n{}", table::render_fig12(&rows));
}

bench_group!(fig12, bench_rows);
bench_main!(fig12);
