//! Ablation A3 — convergence cost: operation-based causal broadcast vs
//! state-based merge under an unreliable network.
//!
//! Operation-based propagation delivers one effector per (operation,
//! replica) pair and needs causal delivery; state-based propagation ships
//! whole states but tolerates loss, duplication, and reordering. The bench
//! measures time to full convergence as the number of operations grows, for
//! the two counter variants of the paper (Listings 3 and 9).
//!
//! Run with `cargo bench -p ral-bench --bench convergence`.

use ral_bench::{bench_group, bench_main, BenchmarkId, Criterion};
use ral_core::ids::ReplicaId;
use ral_crdts::op::counter::{CounterCall, OpCounter};
use ral_crdts::state::pn_counter::{PnCall, PnCounter};
use ral_runtime::op_based::Cluster;
use ral_runtime::state_based::StateCluster;
use std::hint::black_box;

const REPLICAS: usize = 4;

fn op_based_round(ops: usize) -> i64 {
    let mut c = Cluster::new(OpCounter, REPLICAS);
    for i in 0..ops {
        c.invoke(ReplicaId((i % REPLICAS) as u32), CounterCall::Inc);
    }
    c.deliver_all();
    assert!(c.converged());
    *c.state(ReplicaId(0))
}

fn state_based_round(ops: usize) -> i64 {
    let mut c = StateCluster::new(PnCounter, REPLICAS);
    for i in 0..ops {
        c.invoke(ReplicaId((i % REPLICAS) as u32), PnCall::Inc);
    }
    // One full synchronization round suffices regardless of `ops` — the
    // state carries everything (and duplicates are free).
    c.sync_all();
    assert!(c.converged());
    c.state(ReplicaId(0)).value()
}

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence");
    for ops in [16usize, 64, 256, 1024] {
        group.bench_with_input(BenchmarkId::new("op_based", ops), &ops, |b, &ops| {
            b.iter(|| {
                let v = op_based_round(ops);
                assert_eq!(v, ops as i64);
                black_box(v)
            })
        });
        group.bench_with_input(BenchmarkId::new("state_based", ops), &ops, |b, &ops| {
            b.iter(|| {
                let v = state_based_round(ops);
                assert_eq!(v, ops as i64);
                black_box(v)
            })
        });
    }
    group.finish();
}

bench_group!(convergence, bench_convergence);
bench_main!(convergence);
