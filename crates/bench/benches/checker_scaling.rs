//! Ablation A1 — checker scaling: the complete (brute-force) search over
//! linear extensions vs the constructive execution-order witness of
//! Theorem 4.4.
//!
//! The brute-force decision procedure blows up with the number of
//! concurrent operations; the guided check is near-linear. This gap is the
//! practical payoff of the paper's proof methodology: once a CRDT is known
//! to admit execution-order (or timestamp-order) linearizations, a single
//! witness suffices.
//!
//! Run with `cargo bench -p ral-bench --bench checker_scaling`.

use ral_bench::{bench_group, bench_main, BenchmarkId, Criterion};
use ral_core::history::{rewrite_history, History};
use ral_core::ralin::{check_guided, search, Strategy};
use ral_crdts::op::or_set::{OrSet, OrSetLabel, OrSetRewrite};
use ral_runtime::op_based::Cluster;
use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
use ral_spec::set::OrSetSpec;
use std::hint::black_box;

/// Builds an OR-Set history with roughly `steps` scheduler steps.
fn or_set_history(steps: usize, seed: u64) -> History<OrSetLabel<u8>> {
    let mut c = Cluster::new(OrSet::<u8>::new(), 3);
    let cfg = ScheduleConfig {
        steps,
        ..ScheduleConfig::default()
    };
    drive_op_based(&mut c, &cfg, seed, |rng, _, _| {
        Some(match rng.random_range(0..4u8) {
            0 | 1 => ral_crdts::op::or_set::OrSetCall::Add(rng.random_range(0..3)),
            2 => ral_crdts::op::or_set::OrSetCall::Remove(rng.random_range(0..3)),
            _ => ral_crdts::op::or_set::OrSetCall::Read,
        })
    });
    c.into_history()
}

fn guided_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("guided_eo");
    for steps in [15, 30, 60, 120, 240, 480] {
        let h = or_set_history(steps, 7);
        let rewritten = rewrite_history(&h, &OrSetRewrite::new());
        group.bench_with_input(
            BenchmarkId::from_parameter(rewritten.history.len()),
            &rewritten.history,
            |b, h| {
                b.iter(|| {
                    let lin = check_guided(h, &OrSetSpec::new(), Strategy::ExecutionOrder);
                    assert!(lin.is_ok());
                    black_box(lin)
                })
            },
        );
    }
    group.finish();
}

fn brute_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("brute_force");
    group.sample_size(10);
    // The brute-force search explodes: keep histories tiny.
    for steps in [4, 6, 8, 10, 12] {
        let h = or_set_history(steps, 7);
        let rewritten = rewrite_history(&h, &OrSetRewrite::new());
        group.bench_with_input(
            BenchmarkId::from_parameter(rewritten.history.len()),
            &rewritten.history,
            |b, h| {
                b.iter(|| {
                    let outcome = search(h, &OrSetSpec::new());
                    assert!(outcome.is_linearizable());
                    black_box(outcome)
                })
            },
        );
    }
    group.finish();
}

/// Refutations are where the exponential bites: a history with an
/// impossible read forces the search to exhaust every linear extension,
/// while the guided check rejects in linear time.
fn brute_refutation_scaling(c: &mut Criterion) {
    use ral_core::history::{History, OpRecord};
    use ral_core::ids::ReplicaId;
    use ral_spec::counter::{CounterOp, CounterSpec};

    fn impossible_history(concurrent_incs: usize) -> History<CounterOp> {
        let mut h = History::new();
        let incs: Vec<usize> = (0..concurrent_incs)
            .map(|i| h.push(OpRecord::new(CounterOp::Inc, ReplicaId(i as u32)), []))
            .collect();
        // A read that saw every inc but claims one too many.
        h.push(
            OpRecord::new(CounterOp::Read(concurrent_incs as i64 + 1), ReplicaId(0)),
            incs,
        );
        h
    }

    let mut group = c.benchmark_group("brute_refute");
    group.sample_size(10);
    for n in [4usize, 5, 6, 7, 8] {
        let h = impossible_history(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let outcome = search(h, &CounterSpec);
                assert!(outcome.is_refuted());
                black_box(outcome)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("guided_refute");
    for n in [4usize, 5, 6, 7, 8, 64, 512] {
        let h = impossible_history(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let violation = check_guided(h, &CounterSpec, Strategy::ExecutionOrder);
                assert!(violation.is_err());
                black_box(violation)
            })
        });
    }
    group.finish();
}

/// Ablation A4 — nondeterministic specifications: the generic frontier
/// checker vs the polynomial constraint-graph validator on Wooki.
fn wooki_checker_scaling(c: &mut Criterion) {
    use ral_core::label::Identity;
    use ral_core::ralin::ra_check;
    use ral_crdts::op::wooki::{Wooki, WookiCall};
    use ral_spec::wooki::{WookiAnchor, WookiSpec};
    use ral_spec::wooki_fast::check_wooki_guided;

    fn wooki_history(steps: usize, cap: u16, seed: u64) -> History<ral_spec::wooki::WookiOp<u16>> {
        let mut c = Cluster::new(Wooki::<u16>::new(), 3);
        let mut next: u16 = 0;
        let cfg = ScheduleConfig {
            steps,
            invoke_weight: 1,
            deliver_weight: 1,
            final_sync: true,
        };
        drive_op_based(&mut c, &cfg, seed, |rng, _, state| {
            let roll: u8 = rng.random_range(0..10);
            if roll < 4 && next < cap {
                let all = state.all_values();
                let (l, r2) = if all.is_empty() {
                    (WookiAnchor::Begin, WookiAnchor::End)
                } else {
                    let i = rng.random_range(0..=all.len());
                    let j = rng.random_range(i..=all.len());
                    (
                        if i == 0 {
                            WookiAnchor::Begin
                        } else {
                            WookiAnchor::Elem(all[i - 1])
                        },
                        if j == all.len() {
                            WookiAnchor::End
                        } else {
                            WookiAnchor::Elem(all[j])
                        },
                    )
                };
                next += 1;
                Some(WookiCall::AddBetween(l, next, r2))
            } else {
                Some(WookiCall::Read)
            }
        });
        c.into_history()
    }

    let mut group = c.benchmark_group("wooki_frontier");
    group.sample_size(10);
    for (steps, cap) in [(16usize, 4u16), (28, 7), (40, 10)] {
        let h = wooki_history(steps, cap, 2);
        group.bench_with_input(BenchmarkId::from_parameter(h.len()), &h, |b, h| {
            b.iter(|| {
                let lin = ra_check(h, &Identity, &WookiSpec::new(), Strategy::ExecutionOrder);
                assert!(lin.is_ok());
                black_box(lin)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("wooki_constraint_graph");
    for (steps, cap) in [(24usize, 8u16), (80, 30), (200, 60), (400, 120)] {
        let h = wooki_history(steps, cap, 2);
        group.bench_with_input(BenchmarkId::from_parameter(h.len()), &h, |b, h| {
            b.iter(|| {
                let lin = check_wooki_guided(h);
                assert!(lin.is_ok());
                black_box(lin)
            })
        });
    }
    group.finish();
}

bench_group!(
    scaling,
    guided_scaling,
    brute_scaling,
    brute_refutation_scaling,
    wooki_checker_scaling
);
bench_main!(scaling);
