//! Ablation A1 — checker scaling: three complete engines (naive brute
//! force, memoized, memoized-parallel) against each other and against the
//! constructive execution-order witness of Theorem 4.4.
//!
//! The naive decision procedure blows up factorially with the number of
//! concurrent operations; the memoized engine collapses permutations into
//! placed-set configurations (exponential, but in a far smaller base) and
//! decides histories the naive search cannot touch within any practical
//! node budget; the guided check is near-linear. The `*_refute` groups are
//! where the gap matters: refutations must exhaust the whole search space.
//!
//! Run with `cargo bench -p ral-bench --bench checker_scaling`.

use ral_bench::{bench_group, bench_main, BenchmarkId, Criterion};
use ral_core::history::{rewrite_history, History};
use ral_core::ralin::{
    check_guided, search_brute, search_brute_with_budget, search_with_threads, SearchOutcome,
    Strategy,
};
use ral_crdts::op::or_set::{OrSet, OrSetLabel, OrSetRewrite};
use ral_runtime::op_based::Cluster;
use ral_runtime::schedule::{drive_op_based, ScheduleConfig};
use ral_spec::set::OrSetSpec;
use std::hint::black_box;

/// Builds an OR-Set history with roughly `steps` scheduler steps.
fn or_set_history(steps: usize, seed: u64) -> History<OrSetLabel<u8>> {
    let mut c = Cluster::new(OrSet::<u8>::new(), 3);
    let cfg = ScheduleConfig {
        steps,
        ..ScheduleConfig::default()
    };
    drive_op_based(&mut c, &cfg, seed, |rng, _, _| {
        Some(match rng.random_range(0..4u8) {
            0 | 1 => ral_crdts::op::or_set::OrSetCall::Add(rng.random_range(0..3)),
            2 => ral_crdts::op::or_set::OrSetCall::Remove(rng.random_range(0..3)),
            _ => ral_crdts::op::or_set::OrSetCall::Read,
        })
    });
    c.into_history()
}

fn guided_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("guided_eo");
    for steps in [15, 30, 60, 120, 240, 480] {
        let h = or_set_history(steps, 7);
        let rewritten = rewrite_history(&h, &OrSetRewrite::new());
        group.bench_with_input(
            BenchmarkId::from_parameter(rewritten.history.len()),
            &rewritten.history,
            |b, h| {
                b.iter(|| {
                    let lin = check_guided(h, &OrSetSpec::new(), Strategy::ExecutionOrder);
                    assert!(lin.is_ok());
                    black_box(lin)
                })
            },
        );
    }
    group.finish();
}

fn brute_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("brute_force");
    group.sample_size(10);
    // The naive search explodes: keep histories tiny.
    for steps in [4, 6, 8, 10, 12] {
        let h = or_set_history(steps, 7);
        let rewritten = rewrite_history(&h, &OrSetRewrite::new());
        group.bench_with_input(
            BenchmarkId::from_parameter(rewritten.history.len()),
            &rewritten.history,
            |b, h| {
                b.iter(|| {
                    let outcome = search_brute(h, &OrSetSpec::new());
                    assert!(outcome.is_linearizable());
                    black_box(outcome)
                })
            },
        );
    }
    group.finish();
}

/// The memoized engine on the same workload, at sizes 2–10× beyond the
/// naive cap (12 steps) — same outcomes, tractable work.
fn memo_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("memo_search");
    group.sample_size(10);
    for steps in [12, 24, 48, 96] {
        let h = or_set_history(steps, 7);
        let rewritten = rewrite_history(&h, &OrSetRewrite::new());
        group.bench_with_input(
            BenchmarkId::from_parameter(rewritten.history.len()),
            &rewritten.history,
            |b, h| {
                b.iter(|| {
                    let outcome = search_with_threads(h, &OrSetSpec::new(), u64::MAX, 1);
                    assert!(outcome.is_linearizable());
                    black_box(outcome)
                })
            },
        );
    }
    group.finish();
}

/// Refutations are where the exponential bites: a history with an
/// impossible read forces the search to exhaust every linear extension,
/// while the guided check rejects in linear time.
fn brute_refutation_scaling(c: &mut Criterion) {
    use ral_core::history::{History, OpRecord};
    use ral_core::ids::ReplicaId;
    use ral_spec::counter::{CounterOp, CounterSpec};

    fn impossible_history(concurrent_incs: usize) -> History<CounterOp> {
        let mut h = History::new();
        let incs: Vec<usize> = (0..concurrent_incs)
            .map(|i| h.push(OpRecord::new(CounterOp::Inc, ReplicaId(i as u32)), []))
            .collect();
        // A read that saw every inc but claims one too many.
        h.push(
            OpRecord::new(CounterOp::Read(concurrent_incs as i64 + 1), ReplicaId(0)),
            incs,
        );
        h
    }

    let mut group = c.benchmark_group("brute_refute");
    group.sample_size(10);
    for n in [4usize, 5, 6, 7, 8] {
        let h = impossible_history(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let outcome = search_brute(h, &CounterSpec);
                assert!(outcome.is_refuted());
                black_box(outcome)
            })
        });
    }
    group.finish();

    // The memoized engine refutes far wider concurrency: n concurrent
    // increments cost 2^n configurations instead of n! permutations.
    let mut group = c.benchmark_group("memo_refute");
    group.sample_size(10);
    for n in [8usize, 12, 14] {
        let h = impossible_history(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let outcome = search_with_threads(h, &CounterSpec, u64::MAX, 1);
                assert!(outcome.is_refuted());
                black_box(outcome)
            })
        });
    }
    group.finish();

    // The same refutations with the branch-parallel walk (all cores).
    let mut group = c.benchmark_group("memo_refute_parallel");
    group.sample_size(10);
    for n in [12usize, 16] {
        let h = impossible_history(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let outcome = search_with_threads(h, &CounterSpec, u64::MAX, 0);
                assert!(outcome.is_refuted());
                black_box(outcome)
            })
        });
    }
    group.finish();

    // Budget parity at 16 concurrent ops: within the same 1M-node budget
    // the naive engine cannot decide (16! ≈ 2·10¹³ permutations — its
    // measured time below is spent burning the budget and giving up)
    // while the memoized engine refutes outright. At the largest size both
    // engines can decide (n = 8, above), the memoized engine is ~25×
    // faster; from n = 9 on, only it finishes at all.
    let mut group = c.benchmark_group("refute_budget_1m");
    group.sample_size(10);
    let h16 = impossible_history(16);
    group.bench_with_input(BenchmarkId::new("brute", 16), &h16, |b, h| {
        b.iter(|| {
            let outcome = search_brute_with_budget(h, &CounterSpec, 1_000_000);
            assert_eq!(outcome, SearchOutcome::BudgetExhausted);
            black_box(outcome)
        })
    });
    group.bench_with_input(BenchmarkId::new("memo", 16), &h16, |b, h| {
        b.iter(|| {
            let outcome = search_with_threads(h, &CounterSpec, 1_000_000, 1);
            assert!(outcome.is_refuted());
            black_box(outcome)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("guided_refute");
    for n in [4usize, 5, 6, 7, 8, 64, 512] {
        let h = impossible_history(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let violation = check_guided(h, &CounterSpec, Strategy::ExecutionOrder);
                assert!(violation.is_err());
                black_box(violation)
            })
        });
    }
    group.finish();
}

/// Observability overhead on the `memo_refute` workload: recording off
/// (the production default — one relaxed atomic load per instrumentation
/// point) vs recording on (full per-branch stats emission). "off" should
/// be indistinguishable from the pre-instrumentation engine; "on" prices
/// what `RAL_OBS=1` costs.
fn obs_overhead(c: &mut Criterion) {
    use ral_core::history::OpRecord;
    use ral_core::ids::ReplicaId;
    use ral_spec::counter::{CounterOp, CounterSpec};

    fn impossible_history(concurrent_incs: usize) -> History<CounterOp> {
        let mut h = History::new();
        let incs: Vec<usize> = (0..concurrent_incs)
            .map(|i| h.push(OpRecord::new(CounterOp::Inc, ReplicaId(i as u32)), []))
            .collect();
        h.push(
            OpRecord::new(CounterOp::Read(concurrent_incs as i64 + 1), ReplicaId(0)),
            incs,
        );
        h
    }

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    let h = impossible_history(12);
    ral_obs::reset();
    ral_obs::disable();
    group.bench_with_input(BenchmarkId::new("off", 12), &h, |b, h| {
        b.iter(|| {
            let outcome = search_with_threads(h, &CounterSpec, u64::MAX, 1);
            assert!(outcome.is_refuted());
            black_box(outcome)
        })
    });
    ral_obs::enable(None);
    group.bench_with_input(BenchmarkId::new("on", 12), &h, |b, h| {
        b.iter(|| {
            let outcome = search_with_threads(h, &CounterSpec, u64::MAX, 1);
            assert!(outcome.is_refuted());
            black_box(outcome)
        })
    });
    ral_obs::disable();
    ral_obs::reset();
    group.finish();
}

/// Ablation A4 — nondeterministic specifications: the generic frontier
/// checker vs the polynomial constraint-graph validator on Wooki.
fn wooki_checker_scaling(c: &mut Criterion) {
    use ral_core::label::Identity;
    use ral_core::ralin::ra_check;
    use ral_crdts::op::wooki::{Wooki, WookiCall};
    use ral_spec::wooki::{WookiAnchor, WookiSpec};
    use ral_spec::wooki_fast::check_wooki_guided;

    fn wooki_history(steps: usize, cap: u16, seed: u64) -> History<ral_spec::wooki::WookiOp<u16>> {
        let mut c = Cluster::new(Wooki::<u16>::new(), 3);
        let mut next: u16 = 0;
        let cfg = ScheduleConfig {
            steps,
            invoke_weight: 1,
            deliver_weight: 1,
            final_sync: true,
        };
        drive_op_based(&mut c, &cfg, seed, |rng, _, state| {
            let roll: u8 = rng.random_range(0..10);
            if roll < 4 && next < cap {
                let all = state.all_values();
                let (l, r2) = if all.is_empty() {
                    (WookiAnchor::Begin, WookiAnchor::End)
                } else {
                    let i = rng.random_range(0..=all.len());
                    let j = rng.random_range(i..=all.len());
                    (
                        if i == 0 {
                            WookiAnchor::Begin
                        } else {
                            WookiAnchor::Elem(all[i - 1])
                        },
                        if j == all.len() {
                            WookiAnchor::End
                        } else {
                            WookiAnchor::Elem(all[j])
                        },
                    )
                };
                next += 1;
                Some(WookiCall::AddBetween(l, next, r2))
            } else {
                Some(WookiCall::Read)
            }
        });
        c.into_history()
    }

    let mut group = c.benchmark_group("wooki_frontier");
    group.sample_size(10);
    for (steps, cap) in [(16usize, 4u16), (28, 7), (40, 10)] {
        let h = wooki_history(steps, cap, 2);
        group.bench_with_input(BenchmarkId::from_parameter(h.len()), &h, |b, h| {
            b.iter(|| {
                let lin = ra_check(h, &Identity, &WookiSpec::new(), Strategy::ExecutionOrder);
                assert!(lin.is_ok());
                black_box(lin)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("wooki_constraint_graph");
    for (steps, cap) in [(24usize, 8u16), (80, 30), (200, 60), (400, 120)] {
        let h = wooki_history(steps, cap, 2);
        group.bench_with_input(BenchmarkId::from_parameter(h.len()), &h, |b, h| {
            b.iter(|| {
                let lin = check_wooki_guided(h);
                assert!(lin.is_ok());
                black_box(lin)
            })
        });
    }
    group.finish();
}

bench_group!(
    scaling,
    guided_scaling,
    brute_scaling,
    memo_scaling,
    brute_refutation_scaling,
    obs_overhead,
    wooki_checker_scaling
);
bench_main!(scaling);
