//! Ablation — composed-history scaling: the sharded compositional search
//! against the monolithic memoized engine, objects × ops.
//!
//! A composed history over `k` objects costs the monolithic engine the
//! *product* of the per-object configuration spaces (every specification
//! step clones a `k`-vector of abstract states); the sharded search
//! (Theorem 5.5) pays the *sum* — project per object, search every shard,
//! stitch the witnesses. The `composed_scaling` group measures both
//! engines on the same histories so the `monolithic/k` ÷ `sharded/k`
//! ratio in `BENCH_composed_scaling.json` is the headline speedup; the
//! `composed_sharded_parallel` group adds the `RAL_CHECK_THREADS` pool
//! spreading shards over all cores.
//!
//! Run with `cargo bench -p ral-bench --bench composed_scaling`.

use ral_bench::{bench_group, bench_main, BenchmarkId, Criterion};
use ral_core::compose::{MultiObjRewrite, MultiObjSpec};
use ral_core::history::rewrite_history;
use ral_core::history::History;
use ral_core::ralin::{search_sharded_with_threads, search_with_threads};
use ral_core::rng::Rng;
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRewrite};
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::schedule::{drive_multi, ScheduleConfig};
use ral_spec::set::{OrSetOp, OrSetSpec};
use std::hint::black_box;

/// Builds a composed OR-Set history over `objects` objects (3 replicas,
/// shared timestamps — the `⊗ts` regime Theorem 5.5 covers), with the
/// op count scaling linearly in the object count, then applies the
/// query-update rewriting once.
fn composed_history(
    objects: usize,
    seed: u64,
) -> History<ral_core::compose::ObjLabel<OrSetOp<u8>>> {
    let mut c = MultiCluster::new(OrSet::<u8>::new(), objects, 3, TsMode::Shared);
    let cfg = ScheduleConfig {
        steps: objects * 12,
        ..ScheduleConfig::default()
    };
    drive_multi(&mut c, &cfg, seed, |rng: &mut Rng, _, _, _| {
        Some(match rng.random_range(0..4u8) {
            0 | 1 => OrSetCall::Add(rng.random_range(0..3)),
            2 => OrSetCall::Remove(rng.random_range(0..3)),
            _ => OrSetCall::Read,
        })
    });
    let h = c.into_history();
    // Rewrite once, outside the measured region: both engines take the
    // same rewritten history.
    rewrite_history(&h, &MultiObjRewrite::new(OrSetRewrite::new())).history
}

/// Monolithic vs sharded on identical composed histories. The object
/// counts double up to 32; per-object work is constant, so a flat engine
/// would scale linearly — the monolithic engine does not.
fn composed_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("composed_scaling");
    group.sample_size(10);
    for objects in [2usize, 4, 8, 16, 32] {
        let h = composed_history(objects, 7);
        let spec = MultiObjSpec::new(OrSetSpec::new(), objects);
        group.bench_with_input(BenchmarkId::new("monolithic", objects), &h, |b, h| {
            b.iter(|| {
                let outcome = search_with_threads(h, &spec, u64::MAX, 1);
                assert!(outcome.is_linearizable());
                black_box(outcome)
            })
        });
        group.bench_with_input(BenchmarkId::new("sharded", objects), &h, |b, h| {
            b.iter(|| {
                let outcome = search_sharded_with_threads(h, &spec, u64::MAX, 1);
                assert!(outcome.is_linearizable());
                black_box(outcome)
            })
        });
    }
    group.finish();
}

/// The sharded search with the shard pool on all cores
/// (`RAL_CHECK_THREADS`-style `threads = 0`). Shards are independent
/// problems, so the pool can stack on the algorithmic win — though at
/// these shard sizes (tens of µs of search each) thread startup roughly
/// offsets it; the pool pays off as per-shard work grows.
fn composed_sharded_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("composed_sharded_parallel");
    group.sample_size(10);
    for objects in [16usize, 32] {
        let h = composed_history(objects, 7);
        let spec = MultiObjSpec::new(OrSetSpec::new(), objects);
        group.bench_with_input(BenchmarkId::from_parameter(objects), &h, |b, h| {
            b.iter(|| {
                let outcome = search_sharded_with_threads(h, &spec, u64::MAX, 0);
                assert!(outcome.is_linearizable());
                black_box(outcome)
            })
        });
    }
    group.finish();
}

bench_group!(composed, composed_scaling, composed_sharded_parallel);
bench_main!(composed);
