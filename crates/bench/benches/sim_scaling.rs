//! Simulator scaling: events/sec of the discrete-event engine as the
//! gossip mesh grows from 5 to 15 to 50 replicas.
//!
//! Each benchmark measures one complete seeded run of the `gossip`
//! scenario (the 50-replica point is the corpus entry `gossip_50`)
//! driving a state-based PN-Counter cluster, plus an op-based OR-Set run
//! for the causal-broadcast transport. Runs are deterministic, so the
//! event count per run is a constant; it is baked into the benchmark name
//! (`...{n}rep_{events}ev`) so the JSON report (median_ns per run and
//! events per run) yields events/sec directly. The harness also prints the
//! derived events/sec per size before sampling.
//!
//! Run with `cargo bench -p ral-bench --bench sim_scaling`.

use ral_bench::{bench_group, bench_main, BenchmarkId, Criterion};
use ral_crdts::op::or_set::OrSet;
use ral_crdts::state::pn_counter::PnCounter;
use ral_sim::driver::{Driver, OpDriver, StateDriver};
use ral_sim::{scenario, sim};
use ral_verify::workloads;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 3] = [5, 15, 50];
const SEED: u64 = 7;

fn state_run(n: usize) -> usize {
    let sc = scenario::gossip(n);
    let mut driver = StateDriver::new(PnCounter, n, |rng, _, _| Some(workloads::pn_counter(rng)));
    let run = sim::run(&mut driver, &sc.cfg, SEED);
    assert!(driver.converged());
    run.stats.events
}

fn op_run(n: usize) -> usize {
    let sc = scenario::gossip(n);
    let mut driver = OpDriver::new(OrSet::<u8>::new(), n, |rng, _, _| {
        Some(workloads::or_set(rng))
    });
    let run = sim::run(&mut driver, &sc.cfg, SEED);
    assert!(driver.converged());
    run.stats.events
}

fn gossip_state_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scaling/state_gossip");
    group.sample_size(11);
    for n in SIZES {
        // One pre-run pins the deterministic event count (baked into the
        // benchmark name) and yields a first events/sec estimate; the
        // harness then measures the same run properly.
        let start = Instant::now();
        let events = state_run(n);
        eprintln!(
            "sim_scaling: state gossip at {n:>2} replicas — {events} events/run, \
             ~{:.0} events/sec",
            events as f64 / start.elapsed().as_secs_f64()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}rep_{events}ev")),
            &n,
            |b, &n| b.iter(|| black_box(state_run(n))),
        );
    }
    group.finish();
}

fn gossip_op_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scaling/op_gossip");
    group.sample_size(11);
    for n in SIZES {
        let start = Instant::now();
        let events = op_run(n);
        eprintln!(
            "sim_scaling: op gossip at {n:>2} replicas — {events} events/run, \
             ~{:.0} events/sec",
            events as f64 / start.elapsed().as_secs_f64()
        );
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{n}rep_{events}ev")),
            &n,
            |b, &n| b.iter(|| black_box(op_run(n))),
        );
    }
    group.finish();
}

bench_group!(sim_scaling, gossip_state_scaling, gossip_op_scaling);
bench_main!(sim_scaling);
