//! One benchmark per figure of the paper: each iteration rebuilds the
//! figure's execution on the simulator and re-derives its verdict
//! (asserting it matches the paper's claim).
//!
//! Run with `cargo bench -p ral-bench --bench figures`.

use ral_bench::{bench_group, bench_main, Criterion};
use ral_core::compose::{check_composed, MultiObjRewrite, MultiObjSpec};
use ral_core::ids::{ObjId, ReplicaId};
use ral_core::label::Identity;
use ral_core::linearizability::linearizable;
use ral_core::ralin::{ra_check, ra_search, Strategy};
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRewrite};
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_crdts::op::rga_addat::{AddAtCall, RgaAddAtSilent};
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_runtime::op_based::Cluster;
use ral_spec::addat::{AddAt1Spec, AddAt2Spec};
use ral_spec::rga::{Anchor, RgaSpec};
use ral_spec::set::{OrSetSpec, SetSpec};
use std::hint::black_box;

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

fn o(i: u32) -> ObjId {
    ObjId(i)
}

/// Figure 2: RGA conflict resolution and convergence.
fn fig2(c: &mut Criterion) {
    c.bench_function("fig2_rga_conflict_resolution", |b| {
        b.iter(|| {
            let mut cl = Cluster::new(Rga::<char>::new(), 2);
            cl.invoke(r(0), RgaCall::AddAfter(Anchor::Head, 'a'))
                .unwrap();
            cl.deliver_all();
            cl.invoke(r(0), RgaCall::AddAfter(Anchor::Elem('a'), 'c'))
                .unwrap();
            cl.deliver_all();
            cl.invoke(r(0), RgaCall::AddAfter(Anchor::Elem('a'), 'b'))
                .unwrap();
            cl.deliver_all();
            cl.invoke(r(0), RgaCall::AddAfter(Anchor::Elem('c'), 'e'))
                .unwrap();
            cl.invoke(r(1), RgaCall::AddAfter(Anchor::Elem('c'), 'd'))
                .unwrap();
            cl.deliver_all();
            cl.invoke(r(1), RgaCall::Remove('d')).unwrap();
            cl.deliver_all();
            assert!(cl.converged());
            let read = cl.invoke(r(0), RgaCall::Read).unwrap();
            assert_eq!(read.ret, Some(vec!['a', 'b', 'c', 'e']));
            let h = cl.into_history();
            let lin = ra_check(&h, &Identity, &RgaSpec::new(), Strategy::TimestampOrder);
            assert!(lin.is_ok());
            black_box(lin)
        })
    });
}

/// Figure 5: the OR-Set execution — refute plain linearizability, certify
/// RA-linearizability after the query-update rewriting.
fn fig5(c: &mut Criterion) {
    fn history() -> ral_core::history::History<ral_crdts::op::or_set::OrSetLabel<char>> {
        let mut cl = Cluster::new(OrSet::<char>::new(), 2);
        cl.invoke(r(0), OrSetCall::Add('b')).unwrap();
        cl.invoke(r(1), OrSetCall::Add('a')).unwrap();
        cl.invoke(r(0), OrSetCall::Add('a')).unwrap();
        cl.invoke(r(1), OrSetCall::Add('b')).unwrap();
        cl.invoke(r(0), OrSetCall::Remove('a')).unwrap();
        cl.invoke(r(1), OrSetCall::Remove('b')).unwrap();
        cl.deliver_all();
        cl.invoke(r(0), OrSetCall::Read).unwrap();
        cl.invoke(r(1), OrSetCall::Read).unwrap();
        cl.into_history()
    }
    c.bench_function("fig5a_refute_plain_linearizability", |b| {
        b.iter(|| {
            let h = history().map(|l| OrSet::plain_label(&l));
            let outcome = linearizable(&h, &SetSpec::new());
            assert!(outcome.is_refuted());
            black_box(outcome)
        })
    });
    c.bench_function("fig5b_certify_after_rewriting", |b| {
        b.iter(|| {
            let h = history();
            let lin = ra_check(
                &h,
                &OrSetRewrite::new(),
                &OrSetSpec::new(),
                Strategy::ExecutionOrder,
            );
            assert!(lin.is_ok());
            black_box(lin)
        })
    });
}

/// Figure 8: execution order fails, timestamp order succeeds.
fn fig8(c: &mut Criterion) {
    fn history() -> ral_core::history::History<ral_spec::rga::RgaOp<char>> {
        let mut cl = Cluster::new(Rga::<char>::new(), 2);
        let l2 = cl
            .invoke(r(1), RgaCall::AddAfter(Anchor::Head, 'b'))
            .unwrap()
            .op;
        cl.invoke(r(0), RgaCall::AddAfter(Anchor::Head, 'a'))
            .unwrap();
        cl.invoke(r(1), RgaCall::AddAfter(Anchor::Elem('b'), 'c'))
            .unwrap();
        let d = cl
            .deliverable(r(0))
            .into_iter()
            .find(|&d| cl.delivery_op(d) == l2)
            .unwrap();
        cl.deliver(r(0), d);
        cl.invoke(r(0), RgaCall::Read).unwrap();
        cl.deliver_all();
        cl.into_history()
    }
    c.bench_function("fig8_eo_fails_to_succeeds", |b| {
        b.iter(|| {
            let h = history();
            assert!(ra_check(&h, &Identity, &RgaSpec::new(), Strategy::ExecutionOrder).is_err());
            let lin = ra_check(&h, &Identity, &RgaSpec::new(), Strategy::TimestampOrder);
            assert!(lin.is_ok());
            black_box(lin)
        })
    });
}

/// Figure 9: two OR-Sets still compose.
fn fig9(c: &mut Criterion) {
    c.bench_function("fig9_or_set_composition", |b| {
        b.iter(|| {
            let mut cl = MultiCluster::new(OrSet::<char>::new(), 2, 2, TsMode::PerObject);
            cl.invoke(r(0), o(0), OrSetCall::Add('d')).unwrap();
            cl.invoke(r(0), o(1), OrSetCall::Add('a')).unwrap();
            cl.invoke(r(1), o(1), OrSetCall::Add('b')).unwrap();
            cl.invoke(r(1), o(0), OrSetCall::Add('c')).unwrap();
            let h = cl.into_history();
            let spec = MultiObjSpec::new(OrSetSpec::new(), 2);
            let rw = MultiObjRewrite::new(OrSetRewrite::new());
            let lin = ra_check(&h, &rw, &spec, Strategy::ExecutionOrder);
            assert!(lin.is_ok());
            black_box(lin)
        })
    });
}

/// Figure 10: two RGAs refute composition under ⊗ and verify under ⊗ts.
fn fig10(c: &mut Criterion) {
    fn history(
        mode: TsMode,
    ) -> ral_core::history::History<ral_core::compose::ObjLabel<ral_spec::rga::RgaOp<char>>> {
        let mut cl = MultiCluster::new(Rga::<char>::new(), 2, 3, mode);
        let cc = cl
            .invoke(r(0), o(1), RgaCall::AddAfter(Anchor::Head, 'c'))
            .unwrap()
            .op;
        cl.invoke(r(1), o(0), RgaCall::AddAfter(Anchor::Head, 'b'))
            .unwrap();
        let dc = cl
            .deliverable(r(1))
            .into_iter()
            .find(|&d| cl.delivery_op(d) == cc)
            .unwrap();
        cl.deliver(r(1), dc);
        let d = cl
            .invoke(r(1), o(1), RgaCall::AddAfter(Anchor::Head, 'd'))
            .unwrap()
            .op;
        let dd = cl
            .deliverable(r(0))
            .into_iter()
            .find(|&x| cl.delivery_op(x) == d)
            .unwrap();
        cl.deliver(r(0), dd);
        cl.invoke(r(0), o(1), RgaCall::AddAfter(Anchor::Head, 'e'))
            .unwrap();
        cl.invoke(r(0), o(0), RgaCall::AddAfter(Anchor::Head, 'a'))
            .unwrap();
        cl.deliver_all();
        cl.invoke(r(2), o(1), RgaCall::Read).unwrap();
        cl.invoke(r(2), o(0), RgaCall::Read).unwrap();
        cl.into_history()
    }
    c.bench_function("fig10_refute_unrestricted_composition", |b| {
        b.iter(|| {
            let h = history(TsMode::PerObject);
            let spec = MultiObjSpec::new(RgaSpec::new(), 2);
            let outcome = ra_search(&h, &Identity, &spec);
            assert!(outcome.is_refuted());
            black_box(outcome)
        })
    });
    c.bench_function("fig11_verify_shared_ts_composition", |b| {
        b.iter(|| {
            let h = history(TsMode::Shared);
            let spec = MultiObjSpec::new(RgaSpec::new(), 2);
            let lin = check_composed(&h, &spec, Strategy::TimestampOrder);
            assert!(lin.is_ok());
            black_box(lin)
        })
    });
}

/// Figure 14: the addAt refutations (Lemma C.1).
fn fig14(c: &mut Criterion) {
    fn history() -> ral_core::history::History<ral_spec::addat::AddAtOp<char>> {
        let mut cl = Cluster::new(RgaAddAtSilent::<char>::new(), 3);
        cl.invoke(r(0), AddAtCall::AddAt('a', 0)).unwrap();
        cl.deliver_all();
        cl.invoke(r(1), AddAtCall::AddAt('b', 0)).unwrap();
        cl.deliver_all();
        cl.invoke(r(2), AddAtCall::Remove('b')).unwrap();
        cl.deliver_all();
        cl.invoke(r(0), AddAtCall::AddAt('c', 1)).unwrap();
        let d_op = cl.invoke(r(1), AddAtCall::AddAt('d', 0)).unwrap().op;
        let del = cl
            .deliverable(r(2))
            .into_iter()
            .find(|&x| cl.delivery_op(x) == d_op)
            .unwrap();
        cl.deliver(r(2), del);
        cl.invoke(r(2), AddAtCall::Remove('a')).unwrap();
        cl.invoke(r(2), AddAtCall::AddAt('e', 2)).unwrap();
        cl.deliver_all();
        cl.invoke(r(2), AddAtCall::Read).unwrap();
        cl.into_history()
    }
    c.bench_function("fig14_refute_addat1", |b| {
        b.iter(|| {
            let outcome = ra_search(&history(), &Identity, &AddAt1Spec::new());
            assert!(outcome.is_refuted());
            black_box(outcome)
        })
    });
    c.bench_function("fig14_refute_addat2", |b| {
        b.iter(|| {
            let outcome = ra_search(&history(), &Identity, &AddAt2Spec::new());
            assert!(outcome.is_refuted());
            black_box(outcome)
        })
    });
}

bench_group!(figures, fig2, fig5, fig8, fig9, fig10, fig14);
bench_main!(figures);
