//! The analyzer must refute the deliberately broken fixtures — with the
//! *right* obligation and a shrunk, replayable, golden counterexample.
//!
//! The search and the shrinker are fully deterministic (DFS over a sorted
//! dedup set, greedy back-to-front 1-minimization), so the minimal trace is
//! stable across runs and pinned byte-for-byte against golden files.

use ral_analyze::fixtures::{BrokenCounter, SummingCounter};
use ral_analyze::op_engine::{analyze_op, OB_COMMUTE, OB_CONVERGE};
use ral_analyze::state_engine::{analyze_state, OB_PROP4};

#[test]
fn broken_counter_refuted_by_commutativity_with_golden_trace() {
    let analysis = analyze_op(&BrokenCounter, "BrokenCounter", 2);
    let (kind, v) = analysis
        .report
        .violation()
        .expect("the non-commutative counter must be refuted");
    assert_eq!(
        kind, OB_COMMUTE,
        "root cause is the effector, not a symptom"
    );
    assert!(v.ops <= 4, "shrunk counterexample has {} ops", v.ops);
    assert!(!v.detail.is_empty());
    assert_eq!(
        v.trace,
        include_str!("fixtures/broken_counter.txt"),
        "shrunk trace drifted from the golden fixture"
    );
}

#[test]
fn summing_counter_refuted_by_lattice_laws_with_golden_trace() {
    let analysis = analyze_state(&SummingCounter, "SummingCounter", 2);
    let (kind, v) = analysis
        .report
        .violation()
        .expect("the non-idempotent merge must be refuted");
    assert_eq!(kind, OB_PROP4, "root cause is the broken semilattice");
    assert!(v.ops <= 4, "shrunk counterexample has {} ops", v.ops);
    assert!(!v.detail.is_empty());
    assert_eq!(
        v.trace,
        include_str!("fixtures/summing_counter.txt"),
        "shrunk trace drifted from the golden fixture"
    );
}

#[test]
fn refutations_survive_a_deeper_scope() {
    // A larger scope finds a (possibly different) witness. For the broken
    // counter the first violating configuration on the deeper DFS may be a
    // divergent quiescent one (two Decs ship the *same* assignment, so the
    // pairwise check passes on that subtree) — either the root cause or its
    // divergence symptom is a valid refutation, still minimal.
    let op = analyze_op(&BrokenCounter, "BrokenCounter", 3);
    let (kind, v) = op.report.violation().expect("refuted at k=3");
    assert!(
        kind == OB_COMMUTE || kind == OB_CONVERGE,
        "unexpected obligation: {kind}"
    );
    assert!(v.ops <= 4, "shrunk counterexample has {} ops", v.ops);

    let st = analyze_state(&SummingCounter, "SummingCounter", 3);
    let (kind, v) = st.report.violation().expect("refuted at k=3");
    assert_eq!(kind, OB_PROP4);
    assert_eq!(v.ops, 1, "one update is enough to leave the lattice");
}
