// Fixture: a thread-identity read as it would look if it leaked into
// `crates/runtime` *outside* the allowlisted `exec.rs` module. The
// self-test scans this content under `crates/runtime/src/mailbox.rs` (and
// the executor's own path) and asserts the `thread-id` rule still fires —
// the runtime crate has no path-level exemption; only the single audited
// allowlist entry for `crates/runtime/src/exec.rs` is suppressed, and the
// suppression happens at the allowlist layer, not in the scanner.

pub fn sneaky_worker_key() -> u64 {
    let id = std::thread::current().id();
    format!("{id:?}").len() as u64
}
