//! Lint self-test fixture: clean — deterministic substitutes only.
//! Mentions of HashMap or Instant in comments and "env::var in strings"
//! must not trip the token-level scanner.

use std::collections::BTreeMap;

pub fn build() -> BTreeMap<u32, u32> {
    let banned = "HashMap SystemTime thread::current()";
    let mut m = BTreeMap::new();
    m.insert(0, banned.len() as u32);
    m
}
