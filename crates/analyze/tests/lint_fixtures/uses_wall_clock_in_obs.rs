// Fixture: a bare wall-clock read as it would look if it leaked into
// `crates/obs` *outside* the allowlisted `wallclock.rs` module. The
// self-test scans this content under `crates/obs/src/recorder.rs` and
// asserts the `wall-clock` rule still fires — the obs crate has no
// path-level exemption; only the single audited allowlist entry for
// `crates/obs/src/wallclock.rs` is suppressed.

pub fn sneaky_timestamp() -> std::time::Instant {
    std::time::Instant::now()
}
