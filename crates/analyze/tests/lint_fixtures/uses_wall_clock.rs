//! Lint self-test fixture: must trip the `wall-clock` rule.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
