//! Lint self-test fixture: must trip the `env-read` rule.

pub fn threads() -> Option<String> {
    std::env::var("RAL_THREADS").ok()
}
