//! Lint self-test fixture: must trip the `thread-id` rule.

pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}
