//! Cross-validation of the two verification layers.
//!
//! The repo now has two independent ways to check the paper's obligations:
//! the seeded random suites in `ral-verify` (sampling, deep executions) and
//! the bounded-exhaustive engines in `ral-analyze` (complete, shallow
//! executions). They must never disagree:
//!
//! * on every **shipped** CRDT, the analyzer discharges and the seeded
//!   suite passes;
//! * on every **broken** fixture, the analyzer refutes and the seeded
//!   suite fails too;
//! * every replica state a seeded random walk (restricted to the
//!   [`SmallScope`] call pool and the scope's update budget) visits is a
//!   state the exhaustive search also visited — i.e. the bounded search
//!   really does subsume the random one at equal scope.

use ral_analyze::fixtures::{BrokenCall, BrokenCounter, SumCall, SummingCounter};
use ral_analyze::op_engine::analyze_op;
use ral_analyze::state_engine::{analyze_state, MAX_SENDS};
use ral_core::ids::ReplicaId;
use ral_core::rng::Rng;
use ral_core::scope::SmallScope;
use ral_crdts::{
    LwwElementSet, LwwRegister, MvRegister, OpCounter, OrSet, PnCounter, Rga, RgaAddAt,
    TwoPhaseSet, Wooki,
};
use ral_runtime::op_based::{Cluster, OpBased};
use ral_runtime::state_based::{StateBased, StateCluster};
use ral_verify::{commutativity, state_props, workloads};
use std::collections::BTreeSet;

const SEEDS: std::ops::Range<u64> = 0..3;
const STEPS: usize = 30;
// A seed on which every type's scoped walk visits at least two distinct
// states (some seeds burn the whole update budget on no-op removes of
// absent elements, making the subset assertion vacuous).
const WALK_SEED: u64 = 37;
const WALK_STEPS: usize = 60;

/// A seeded random walk over an op-based cluster, restricted exactly to
/// what the exhaustive search explores: `scope_calls` pools, at most `k`
/// updates, causal deliveries. Returns every replica state it visits.
fn op_walk<C>(crdt: &C, k: usize) -> BTreeSet<String>
where
    C: OpBased + SmallScope<Call = <C as OpBased>::Call> + Clone,
{
    let n = crdt.scope_replicas(k);
    let mut cluster = Cluster::new(crdt.clone(), n);
    let mut rng = Rng::seed_from_u64(WALK_SEED);
    let mut updates = 0usize;
    let mut keys = BTreeSet::new();
    for _ in 0..WALK_STEPS {
        for r in 0..n {
            keys.insert(format!("{:?}", cluster.state(ReplicaId(r as u32))));
        }
        let r = ReplicaId(rng.random_range(0..n) as u32);
        if updates < k && rng.random_bool(0.5) {
            let pool = crdt.scope_calls(updates, k);
            if pool.is_empty() {
                continue;
            }
            let call = pool[rng.random_range(0..pool.len())].clone();
            if cluster.invoke(r, call).is_some() {
                updates += 1;
            }
        } else {
            let ds = cluster.deliverable(r);
            if ds.is_empty() {
                continue;
            }
            cluster.deliver(r, ds[rng.random_range(0..ds.len())]);
        }
    }
    for r in 0..n {
        keys.insert(format!("{:?}", cluster.state(ReplicaId(r as u32))));
    }
    keys
}

/// The state-based analogue of [`op_walk`], honoring the engine's send and
/// at-most-once-apply budgets.
fn state_walk<C>(crdt: &C, k: usize) -> BTreeSet<String>
where
    C: StateBased + SmallScope<Call = <C as StateBased>::Call> + Clone,
{
    let n = crdt.scope_replicas(k);
    let mut cluster = StateCluster::new(crdt.clone(), n);
    let mut rng = Rng::seed_from_u64(WALK_SEED);
    let (mut updates, mut sends) = (0usize, 0usize);
    let mut applied: BTreeSet<(u32, usize)> = BTreeSet::new();
    let mut keys = BTreeSet::new();
    for _ in 0..WALK_STEPS {
        for r in 0..n {
            keys.insert(format!("{:?}", cluster.state(ReplicaId(r as u32))));
        }
        let r = ReplicaId(rng.random_range(0..n) as u32);
        match rng.random_range(0..3u8) {
            0 if updates < k => {
                let pool = crdt.scope_calls(updates, k);
                if pool.is_empty() {
                    continue;
                }
                let call = pool[rng.random_range(0..pool.len())].clone();
                if cluster.invoke(r, call).is_some() {
                    updates += 1;
                }
            }
            1 if sends < MAX_SENDS => {
                cluster.send(r);
                sends += 1;
            }
            2 if cluster.n_messages() > 0 => {
                let m = rng.random_range(0..cluster.n_messages());
                if cluster.message_origin(m) != r && applied.insert((r.0, m)) {
                    cluster.apply(r, m);
                }
            }
            _ => {}
        }
    }
    for r in 0..n {
        keys.insert(format!("{:?}", cluster.state(ReplicaId(r as u32))));
    }
    keys
}

fn assert_subset(name: &str, walked: &BTreeSet<String>, explored: &BTreeSet<String>) {
    for s in walked {
        assert!(
            explored.contains(s),
            "{name}: the seeded walk reached state {s} that the exhaustive \
             search never visited — the bounded search is not exhaustive"
        );
    }
    assert!(walked.len() > 1, "{name}: the walk went nowhere — vacuous");
}

#[test]
fn op_types_agree_with_seeded_suite_and_subsume_its_walks() {
    // (scope per type: 3 where the debug-build search is cheap, 2 for the
    // branching-heavy list types; the release CLI runs everything at 3.)
    let a = analyze_op(&OpCounter, "OpCounter", 3);
    assert!(a.report.discharged(), "{}", a.report);
    let s = commutativity::check_op_based(OpCounter, 3, STEPS, SEEDS, |rng, _, _| {
        Some(workloads::counter(rng))
    });
    assert!(s.ok(), "seeded suite disagrees on OpCounter: {s:?}");
    assert_subset("OpCounter", &op_walk(&OpCounter, 3), &a.state_keys);

    let reg = LwwRegister::<u8>::new();
    let a = analyze_op(&reg, "LwwRegister", 3);
    assert!(a.report.discharged(), "{}", a.report);
    let s = commutativity::check_op_based(reg, 3, STEPS, SEEDS, |rng, _, _| {
        Some(workloads::lww_register(rng))
    });
    assert!(s.ok(), "seeded suite disagrees on LwwRegister: {s:?}");
    assert_subset("LwwRegister", &op_walk(&reg, 3), &a.state_keys);

    let set = OrSet::<u8>::new();
    let a = analyze_op(&set, "OrSet", 2);
    assert!(a.report.discharged(), "{}", a.report);
    let s = commutativity::check_op_based(set, 3, STEPS, SEEDS, |rng, _, _| {
        Some(workloads::or_set(rng))
    });
    assert!(s.ok(), "seeded suite disagrees on OrSet: {s:?}");
    assert_subset("OrSet", &op_walk(&set, 2), &a.state_keys);

    let rga = Rga::<u16>::new();
    let a = analyze_op(&rga, "Rga", 2);
    assert!(a.report.discharged(), "{}", a.report);
    let mut next = 100u16;
    let s = commutativity::check_op_based(rga, 3, STEPS, SEEDS, |rng, _, state| {
        workloads::rga(rng, state, &mut next)
    });
    assert!(s.ok(), "seeded suite disagrees on Rga: {s:?}");
    assert_subset("Rga", &op_walk(&rga, 2), &a.state_keys);

    let rga = RgaAddAt::<u16>::new();
    let a = analyze_op(&rga, "RgaAddAt", 2);
    assert!(a.report.discharged(), "{}", a.report);
    let mut next = 100u16;
    let s = commutativity::check_op_based(rga, 3, STEPS, SEEDS, |rng, _, state| {
        workloads::rga_addat(rng, state, &mut next)
    });
    assert!(s.ok(), "seeded suite disagrees on RgaAddAt: {s:?}");
    assert_subset("RgaAddAt", &op_walk(&rga, 2), &a.state_keys);

    let wooki = Wooki::<u16>::new();
    let a = analyze_op(&wooki, "Wooki", 2);
    assert!(a.report.discharged(), "{}", a.report);
    let mut next = 100u16;
    let s = commutativity::check_op_based(wooki, 3, STEPS, SEEDS, |rng, _, state| {
        workloads::wooki(rng, state, &mut next, 120)
    });
    assert!(s.ok(), "seeded suite disagrees on Wooki: {s:?}");
    assert_subset("Wooki", &op_walk(&wooki, 2), &a.state_keys);
}

#[test]
fn state_types_agree_with_seeded_suite_and_subsume_its_walks() {
    let a = analyze_state(&PnCounter, "PnCounter", 2);
    assert!(a.report.discharged(), "{}", a.report);
    let s = state_props::check_state_based(PnCounter, 3, STEPS, SEEDS, |rng, _, _| {
        Some(workloads::pn_counter(rng))
    });
    assert!(s.ok(), "seeded suite disagrees on PnCounter: {s:?}");
    assert_subset("PnCounter", &state_walk(&PnCounter, 2), &a.state_keys);

    let reg = MvRegister::<u8>::new();
    let a = analyze_state(&reg, "MvRegister", 2);
    assert!(a.report.discharged(), "{}", a.report);
    let s = state_props::check_state_based(reg, 3, STEPS, SEEDS, |rng, _, _| {
        Some(workloads::mv_register(rng))
    });
    assert!(s.ok(), "seeded suite disagrees on MvRegister: {s:?}");
    assert_subset("MvRegister", &state_walk(&reg, 2), &a.state_keys);

    let set = LwwElementSet::<u8>::new();
    let a = analyze_state(&set, "LwwElementSet", 2);
    assert!(a.report.discharged(), "{}", a.report);
    let s = state_props::check_state_based(set, 3, STEPS, SEEDS, |rng, _, _| {
        Some(workloads::lww_element_set(rng))
    });
    assert!(s.ok(), "seeded suite disagrees on LwwElementSet: {s:?}");
    assert_subset("LwwElementSet", &state_walk(&set, 2), &a.state_keys);

    let set = TwoPhaseSet::<u16>::new();
    let a = analyze_state(&set, "TwoPhaseSet", 2);
    assert!(a.report.discharged(), "{}", a.report);
    let mut next = 100u16;
    let s = state_props::check_state_based(set, 3, STEPS, SEEDS, |rng, _, state| {
        workloads::two_phase_set(rng, state, &mut next)
    });
    assert!(s.ok(), "seeded suite disagrees on TwoPhaseSet: {s:?}");
    assert_subset("TwoPhaseSet", &state_walk(&set, 2), &a.state_keys);
}

#[test]
fn negative_fixtures_fail_both_layers() {
    // The analyzer refutes them (tested byte-for-byte in
    // negative_fixtures.rs); the seeded suites must catch them too, or the
    // two layers would disagree on a broken type.
    let s = commutativity::check_op_based(BrokenCounter, 3, 40, 0..5, |rng, _, _| {
        Some(if rng.random_bool(0.5) {
            BrokenCall::Inc
        } else {
            BrokenCall::Dec
        })
    });
    assert!(!s.ok(), "seeded commutativity suite missed BrokenCounter");

    let s =
        state_props::check_state_based(SummingCounter, 3, 40, 0..5, |_, _, _| Some(SumCall::Inc));
    assert!(!s.ok(), "seeded state-props suite missed SummingCounter");
}
