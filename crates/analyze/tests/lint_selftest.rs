//! Self-test of the determinism lint: each rule must fire on its fixture
//! file, the clean fixture must pass, and the real workspace must be clean
//! with no stale allowlist entries.
//!
//! The fixture files live under `tests/lint_fixtures/` — a directory the
//! workspace scanner skips by name, so the fixtures can contain the banned
//! constructs without failing the gate they exist to test.

use ral_analyze::lint::{
    lint_workspace, scan_source, RULE_CLOCK, RULE_ENV, RULE_HASH, RULE_THREAD,
};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn each_rule_fires_on_its_fixture() {
    let cases = [
        ("uses_hash_collections.rs", RULE_HASH),
        ("uses_wall_clock.rs", RULE_CLOCK),
        ("uses_env_read.rs", RULE_ENV),
        ("uses_thread_id.rs", RULE_THREAD),
    ];
    for (file, rule) in cases {
        // Scan under a synthetic non-exempt path: the rules must judge the
        // content, not the fixture's real location.
        let hits = scan_source(&format!("crates/example/src/{file}"), &fixture(file));
        assert!(!hits.is_empty(), "{file}: expected a {rule} hit, got none");
        assert!(
            hits.iter().all(|h| h.rule == rule),
            "{file}: expected only {rule} hits, got {hits:?}"
        );
    }
}

#[test]
fn wall_clock_in_obs_outside_wallclock_module_still_fires() {
    // `crates/obs` carries the one allowlisted wall-clock read in
    // `src/wallclock.rs`. That entry is file-scoped: the same construct
    // anywhere else in the crate must still fail the gate.
    let src = fixture("uses_wall_clock_in_obs.rs");
    for path in ["crates/obs/src/recorder.rs", "crates/obs/src/perfetto.rs"] {
        let hits = scan_source(path, &src);
        assert!(
            hits.iter().any(|h| h.rule == RULE_CLOCK),
            "{path}: expected a {RULE_CLOCK} hit, got {hits:?}"
        );
    }
    // The allowlisted file itself also *scans* dirty — suppression is the
    // allowlist's job, not the scanner's, which is what keeps the entry
    // from going stale silently.
    let hits = scan_source("crates/obs/src/wallclock.rs", &src);
    assert!(hits.iter().any(|h| h.rule == RULE_CLOCK));
}

#[test]
fn thread_id_in_runtime_outside_exec_module_still_fires() {
    // `crates/runtime` carries the one allowlisted thread-identity read in
    // `src/exec.rs` (realized-parallelism telemetry). That entry is
    // file-scoped: the same construct anywhere else in the crate must
    // still fail the gate.
    let src = fixture("uses_thread_id_in_runtime.rs");
    for path in [
        "crates/runtime/src/mailbox.rs",
        "crates/runtime/src/op_based.rs",
    ] {
        let hits = scan_source(path, &src);
        assert!(
            hits.iter().any(|h| h.rule == RULE_THREAD),
            "{path}: expected a {RULE_THREAD} hit, got {hits:?}"
        );
    }
    // The allowlisted file itself also *scans* dirty — suppression is the
    // allowlist's job, not the scanner's, which is what keeps the entry
    // from going stale silently.
    let hits = scan_source("crates/runtime/src/exec.rs", &src);
    assert!(hits.iter().any(|h| h.rule == RULE_THREAD));
}

#[test]
fn clean_fixture_stays_clean() {
    let hits = scan_source("crates/example/src/clean.rs", &fixture("clean.rs"));
    assert!(hits.is_empty(), "clean fixture tripped the lint: {hits:?}");
}

#[test]
fn workspace_is_clean_and_fixture_dir_is_skipped() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let outcome = lint_workspace(&root).expect("scan");
    assert!(
        outcome.clean(),
        "workspace lint hits:\n{}",
        outcome
            .hits
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.stale_allow.is_empty(),
        "stale allowlist entries: {:?}",
        outcome.stale_allow
    );
    // Every allowlist entry is exercised by the current tree.
    assert!(outcome.allowed > 0, "allowlist suppressed nothing");
    // The banned-construct fixtures must not appear in the scan set: the
    // workspace count stays stable whether or not they exist.
    assert!(outcome.files_scanned > 50, "suspiciously few files scanned");
}
