//! Workspace determinism lint — engine 2 of `ral-analyze`.
//!
//! Everything this repository verifies rests on runs being **replayable**:
//! the brute checker, the RA-linearization search, and the simulation
//! corpus all assume that the same seed produces the same trace. Four
//! std-library conveniences silently break that assumption, so this module
//! bans them at the token level across the workspace:
//!
//! * **`hash-collections`** — `HashMap`/`HashSet` have seed-randomized
//!   iteration order (`RandomState`); any trace that iterates one is
//!   nondeterministic across runs. `BTreeMap`/`BTreeSet` are the
//!   deterministic substitutes.
//! * **`wall-clock`** — `SystemTime`/`Instant` reads differ per run;
//!   logical [Lamport time](ral_core::timestamp::Ts) is the only clock
//!   trace-affecting code may consult. `crates/bench` is exempt (measuring
//!   wall time is its whole point).
//! * **`env-read`** — ad-hoc `std::env::var` calls scatter hidden run
//!   configuration; every read must go through the documented
//!   [`ral_core::env`] module, the single exempt file.
//! * **`thread-id`** — `thread::current()` names/ids vary per run and per
//!   machine; nothing that can reach an output path may use them.
//!
//! The scanner is a hand-rolled lexer (no `syn`, no dependencies): it
//! strips nested block comments, line comments, strings, raw strings, and
//! char literals (disambiguating lifetimes), then pattern-matches the
//! remaining identifier/`::` token stream. Audited exceptions live in
//! `crates/analyze/lint_allowlist.txt` as `<rule> <path> <justification>`
//! lines; an entry without a justification is itself a lint failure, and
//! entries that no longer match anything are reported as stale.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule id: seed-randomized `HashMap`/`HashSet`.
pub const RULE_HASH: &str = "hash-collections";
/// Rule id: `SystemTime`/`Instant` outside `crates/bench`.
pub const RULE_CLOCK: &str = "wall-clock";
/// Rule id: `env::var` family outside `ral_core::env`.
pub const RULE_ENV: &str = "env-read";
/// Rule id: `thread::current()` anywhere.
pub const RULE_THREAD: &str = "thread-id";
/// Rule id: malformed allowlist entry (missing justification).
pub const RULE_ALLOWLIST: &str = "allowlist-format";

/// All scanner rules, for reports and docs.
pub const RULES: [&str; 4] = [RULE_HASH, RULE_CLOCK, RULE_ENV, RULE_THREAD];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintHit {
    /// Which rule fired (one of [`RULES`] or [`RULE_ALLOWLIST`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// The source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for LintHit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}:{}: {}",
            self.rule, self.path, self.line, self.snippet
        )
    }
}

/// The result of a workspace scan.
#[derive(Clone, Debug, Default)]
pub struct LintOutcome {
    /// Findings not covered by the allowlist, in path order.
    pub hits: Vec<LintHit>,
    /// Allowlist entries that suppressed at least one finding.
    pub allowed: usize,
    /// Allowlist entries that matched nothing — stale, should be pruned.
    pub stale_allow: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// Whether the workspace is clean (stale allowlist entries are
    /// warnings, not failures).
    pub fn clean(&self) -> bool {
        self.hits.is_empty()
    }
}

/// Scans every `.rs` file under `root` (skipping `target/`, `.git/`, and
/// `lint_fixtures/` self-test directories) and applies the allowlist at
/// `root/crates/analyze/lint_allowlist.txt` if present.
pub fn lint_workspace(root: &Path) -> io::Result<LintOutcome> {
    let allowlist = read_allowlist(&root.join("crates/analyze/lint_allowlist.txt"))?;
    let mut outcome = LintOutcome::default();
    // Malformed entries fail the gate like any other hit.
    outcome.hits.extend(allowlist.malformed.clone());
    let mut used = vec![false; allowlist.entries.len()];
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let content = fs::read_to_string(&path)?;
        outcome.files_scanned += 1;
        for hit in scan_source(&rel, &content) {
            match allowlist
                .entries
                .iter()
                .position(|e| e.rule == hit.rule && e.path == rel)
            {
                Some(i) => {
                    used[i] = true;
                    outcome.allowed += 1;
                }
                None => outcome.hits.push(hit),
            }
        }
    }
    for (i, entry) in allowlist.entries.iter().enumerate() {
        if !used[i] {
            outcome
                .stale_allow
                .push(format!("{} {}", entry.rule, entry.path));
        }
    }
    Ok(outcome)
}

/// Applies all four rules to one file's source text. Pure — this is the
/// entry point the self-tests drive directly.
pub fn scan_source(rel_path: &str, content: &str) -> Vec<LintHit> {
    let tokens = tokenize(content);
    let lines: Vec<&str> = content.lines().collect();
    let snippet = |line: usize| -> String {
        lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };
    let mut hits = Vec::new();
    let mut push = |rule: &'static str, line: usize| {
        if !exempt(rule, rel_path) {
            hits.push(LintHit {
                rule,
                path: rel_path.to_string(),
                line,
                snippet: snippet(line),
            });
        }
    };
    for (i, tok) in tokens.iter().enumerate() {
        let Tok::Ident(name, line) = tok else {
            continue;
        };
        match name.as_str() {
            "HashMap" | "HashSet" => push(RULE_HASH, *line),
            "SystemTime" | "Instant" => push(RULE_CLOCK, *line),
            "env" if path_call(&tokens, i, &["var", "var_os", "vars", "vars_os"]) => {
                push(RULE_ENV, *line)
            }
            "thread" if path_call(&tokens, i, &["current"]) => push(RULE_THREAD, *line),
            _ => {}
        }
    }
    hits
}

/// Whether the identifier at `i` is followed by `::` and then one of
/// `methods` — i.e. the token stream reads `ident :: method`.
fn path_call(tokens: &[Tok], i: usize, methods: &[&str]) -> bool {
    matches!(tokens.get(i + 1), Some(Tok::PathSep))
        && matches!(tokens.get(i + 2), Some(Tok::Ident(m, _)) if methods.contains(&m.as_str()))
}

/// Per-rule path exemptions (crate- or file-scoped; audited one-offs go in
/// the allowlist instead).
fn exempt(rule: &str, rel_path: &str) -> bool {
    match rule {
        // Benchmarks measure wall time and may key scratch tables however
        // they like — nothing in `crates/bench` affects a verified trace.
        RULE_HASH | RULE_CLOCK => rel_path.starts_with("crates/bench/"),
        // The one place allowed to read the process environment.
        RULE_ENV => rel_path == "crates/core/src/env.rs",
        _ => false,
    }
}

#[derive(Debug)]
enum Tok {
    Ident(String, usize),
    PathSep,
}

/// Lexes `content` into identifier / `::` tokens, skipping comments
/// (nested), strings, raw strings, and char literals.
fn tokenize(content: &str) -> Vec<Tok> {
    let chars: Vec<char> = content.chars().collect();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => i = skip_string(&chars, i, &mut line),
            '\'' => i = skip_char_or_lifetime(&chars, i, &mut line),
            ':' if chars.get(i + 1) == Some(&':') => {
                toks.push(Tok::PathSep);
                i += 2;
            }
            _ if c == '_' || c.is_alphabetic() => {
                // Raw strings and byte strings start like identifiers:
                // r"..", r#".."#, br"..", b"..".
                if let Some(end) = raw_string_end(&chars, i, &mut line) {
                    i = end;
                    continue;
                }
                if c == 'b' && chars.get(i + 1) == Some(&'"') {
                    i = skip_string(&chars, i + 1, &mut line);
                    continue;
                }
                let start = i;
                while i < chars.len() && (chars[i] == '_' || chars[i].is_alphanumeric()) {
                    i += 1;
                }
                toks.push(Tok::Ident(chars[start..i].iter().collect(), line));
            }
            _ => i += 1,
        }
    }
    toks
}

/// Skips a `"`-delimited string starting at `i` (the opening quote);
/// returns the index just past the closing quote.
fn skip_string(chars: &[char], i: usize, line: &mut usize) -> usize {
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// If position `i` starts a raw (byte) string — `r"`, `r#"`, `br##"`, … —
/// skips it and returns the index past its closing delimiter.
fn raw_string_end(chars: &[char], i: usize, line: &mut usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    while j < chars.len() {
        if chars[j] == '\n' {
            *line += 1;
        }
        if chars[j] == '"'
            && chars[j + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return Some(j + 1 + hashes);
        }
        j += 1;
    }
    Some(j)
}

/// Skips a char literal, or recognizes a lifetime (`'a`) and leaves its
/// identifier unemitted (lifetime names are never lint targets).
fn skip_char_or_lifetime(chars: &[char], i: usize, line: &mut usize) -> usize {
    match chars.get(i + 1) {
        Some('\\') => {
            // Escaped char literal: scan to the closing quote.
            let mut j = i + 2;
            while j < chars.len() && chars[j] != '\'' {
                j += 1;
            }
            j + 1
        }
        Some(&c) if c == '_' || c.is_alphabetic() => {
            if chars.get(i + 2) == Some(&'\'') {
                i + 3 // 'x' — a plain char literal
            } else {
                // A lifetime: consume the identifier after the tick.
                let mut j = i + 1;
                while j < chars.len() && (chars[j] == '_' || chars[j].is_alphanumeric()) {
                    j += 1;
                }
                j
            }
        }
        Some('\n') => {
            *line += 1;
            i + 2
        }
        Some(_) => {
            if chars.get(i + 2) == Some(&'\'') {
                i + 3
            } else {
                i + 1
            }
        }
        None => i + 1,
    }
}

struct Allowlist {
    entries: Vec<AllowEntry>,
    malformed: Vec<LintHit>,
}

struct AllowEntry {
    rule: String,
    path: String,
}

fn read_allowlist(path: &Path) -> io::Result<Allowlist> {
    let mut entries = Vec::new();
    let mut malformed = Vec::new();
    let content = match fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) if e.kind() == io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    for (lineno, raw) in content.lines().enumerate() {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(3, char::is_whitespace);
        let rule = parts.next().unwrap_or_default();
        let file = parts.next().unwrap_or_default();
        let justification = parts.next().unwrap_or_default().trim();
        if file.is_empty() || justification.is_empty() || !RULES.contains(&rule) {
            malformed.push(LintHit {
                rule: RULE_ALLOWLIST,
                path: path.to_string_lossy().into_owned(),
                line: lineno + 1,
                snippet: format!(
                    "allowlist entry needs `<rule> <path> <justification>`: {trimmed}"
                ),
            });
            continue;
        }
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path: file.to_string(),
        });
    }
    Ok(Allowlist { entries, malformed })
}

/// Collects workspace `.rs` files in deterministic (sorted) order, skipping
/// build output, VCS metadata, and the lint self-test fixtures.
fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries = fs::read_dir(&dir)?.collect::<Result<Vec<_>, _>>()?;
        entries.sort_by_key(|e| e.file_name());
        for entry in entries {
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "lint_fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_hash_collections() {
        let hits = scan_source("crates/x/src/lib.rs", "use std::collections::HashMap;\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_HASH);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn comments_and_strings_do_not_trip() {
        let src = "// HashMap in a comment\n/* SystemTime /* nested Instant */ */\nlet s = \"HashSet env::var\";\nlet r = r#\"thread::current()\"#;\n";
        assert!(scan_source("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn env_macro_and_args_are_fine_but_var_is_not() {
        let ok = "let p = env!(\"CARGO_MANIFEST_DIR\");\nlet a: Vec<String> = std::env::args().collect();\n";
        assert!(scan_source("crates/x/src/lib.rs", ok).is_empty());
        let bad = "let v = std::env::var(\"RAL_THREADS\");\n";
        let hits = scan_source("crates/x/src/lib.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RULE_ENV);
    }

    #[test]
    fn bench_crate_is_exempt_from_clock_and_hash() {
        let src = "use std::time::Instant;\nuse std::collections::HashMap;\n";
        assert!(scan_source("crates/bench/src/lib.rs", src).is_empty());
        assert_eq!(scan_source("crates/other/src/lib.rs", src).len(), 2);
    }

    #[test]
    fn lifetimes_do_not_break_the_lexer() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; let e = '\\n'; x }\nuse std::collections::HashSet;\n";
        let hits = scan_source("crates/x/src/lib.rs", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 2);
    }

    #[test]
    fn thread_current_flags_everywhere_even_bench() {
        let src = "let id = std::thread::current().id();\n";
        assert_eq!(scan_source("crates/bench/src/lib.rs", src).len(), 1);
    }
}
