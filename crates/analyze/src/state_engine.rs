//! Bounded-exhaustive obligation checking for state-based CRDTs.
//!
//! The search enumerates every configuration a [`StateCluster`] can reach
//! within `k` update invocations, at most [`MAX_SENDS`] snapshot messages,
//! and at most one application of each message per receiving replica (the
//! unreliable network of Appendix D.2 may duplicate applications, but a
//! duplicate is a merge of a state already below the receiver — the lattice
//! checks on each configuration cover it). On every configuration the engine
//! discharges the Appendix D obligations over the *configuration's state
//! set* — every replica state plus every in-flight snapshot:
//!
//! * **`prop1-commutativity`** — local effectors commute (restricted to
//!   concurrent operations for the uniquely-identified class, Prop1;
//!   unconditional otherwise, Prop1′);
//! * **`prop2-merge-exchange`** / **`prop3-shared-apply`** — effectors
//!   exchange with `merge` under the predicate `P1`/`P2`;
//! * **`prop4-lattice`** — `merge` is idempotent, commutative, associative,
//!   an upper bound, and monotone w.r.t. `leq`;
//! * **`prop5-origin-replay`** (checked on every invocation edge) — the
//!   invocation's state change equals applying the local effector;
//! * **`prop6-idempotent-apply`** — re-application is a no-op (idempotent
//!   class only);
//! * **`arg-order`** — argument uniqueness and visibility-consistency
//!   (Lemmas E.1/E.2, uniquely-identified class only);
//! * **`ts-discipline`** — the Lamport side condition of Figure 7;
//! * **`delta-laws`** — decomposition (on invocation edges), resynchronization
//!   and batching (on configuration state pairs/triples) of [`DeltaCrdt`].
//!
//! Violations are shrunk to 1-minimal replayable traces, exactly as in
//! [`crate::op_engine`].

use crate::outcome::{Sink, TypeReport, Violation};
use crate::shrink::shrink_trace;
use ral_core::ids::ReplicaId;
use ral_core::scope::SmallScope;
use ral_crdts::state::local::{EffectorClass, LocalEffector};
use ral_runtime::delta::DeltaCrdt;
use ral_runtime::state_based::{StateBased, StateCluster};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::{self, Debug, Write as _};

/// Obligation key: Prop1/Prop1′ local-effector commutativity.
pub const OB_PROP1: &str = "prop1-commutativity";
/// Obligation key: Prop2 merge/effector exchange under `P`.
pub const OB_PROP2: &str = "prop2-merge-exchange";
/// Obligation key: Prop3 apply-on-both-sides exchange.
pub const OB_PROP3: &str = "prop3-shared-apply";
/// Obligation key: Prop4 + lattice laws (ACI, upper bound, monotonicity).
pub const OB_PROP4: &str = "prop4-lattice";
/// Obligation key: Prop5 invocation-vs-local-effector agreement.
pub const OB_PROP5: &str = "prop5-origin-replay";
/// Obligation key: Prop6 idempotent re-application.
pub const OB_PROP6: &str = "prop6-idempotent-apply";
/// Obligation key: Lemma E.1/E.2 argument uniqueness and order.
pub const OB_ARG_ORDER: &str = "arg-order";
/// Obligation key: timestamp freshness + uniqueness.
pub const OB_TS: &str = "ts-discipline";
/// Obligation key: the four delta laws of [`DeltaCrdt`].
pub const OB_DELTA: &str = "delta-laws";

/// Bound on snapshot messages per explored execution. Two snapshots suffice
/// to cross two concurrent updates both ways — the shape every merge
/// obligation quantifies over.
pub const MAX_SENDS: usize = 2;

/// One event of a state-based execution trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StEvent<Call> {
    /// Execute `call` locally at `replica`.
    Invoke {
        /// Stable invocation id (dense in the original trace).
        id: usize,
        /// Origin replica.
        replica: u32,
        /// The method call.
        call: Call,
    },
    /// Snapshot `replica`'s state into a message.
    Send {
        /// Stable message id (dense in the original trace).
        id: usize,
        /// Sending replica.
        replica: u32,
    },
    /// Merge message `of` into `replica`.
    Apply {
        /// Receiving replica.
        replica: u32,
        /// The `id` of the [`StEvent::Send`] whose snapshot is merged.
        of: usize,
    },
}

impl<Call: Debug> fmt::Display for StEvent<Call> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StEvent::Invoke { id, replica, call } => {
                write!(f, "invoke#{id} at r{replica}: {call:?}")
            }
            StEvent::Send { id, replica } => write!(f, "send#{id} from r{replica}"),
            StEvent::Apply { replica, of } => write!(f, "apply send#{of} at r{replica}"),
        }
    }
}

/// Renders a trace as the replayable fixture format.
pub fn render_state_trace<Call: Debug>(n_replicas: usize, events: &[StEvent<Call>]) -> String {
    let mut out = format!("cluster with {n_replicas} replicas\n");
    for ev in events {
        let _ = writeln!(out, "{ev}");
    }
    out
}

/// The result of analyzing one state-based CRDT.
pub struct StateAnalysis {
    /// Per-obligation verdicts.
    pub report: TypeReport,
    /// `Debug` renderings of every replica state the search visited.
    pub state_keys: BTreeSet<String>,
}

struct Node<C: StateBased> {
    cluster: StateCluster<C>,
    trace: Vec<StEvent<<C as StateBased>::Call>>,
    updates: usize,
    sends: usize,
    /// `(replica, message)` pairs already applied on this path.
    applied: BTreeSet<(u32, usize)>,
}

/// Exhaustively explores `crdt` within scope `k` and discharges (or refutes,
/// with a shrunk counterexample) the state-based obligations.
pub fn analyze_state<C>(crdt: &C, name: &str, k: usize) -> StateAnalysis
where
    C: LocalEffector + DeltaCrdt + SmallScope<Call = <C as StateBased>::Call> + Clone,
{
    let n = crdt.scope_replicas(k);
    let mut sink = Sink::new();
    for ob in [
        OB_PROP1, OB_PROP2, OB_PROP3, OB_PROP4, OB_PROP5, OB_TS, OB_DELTA,
    ] {
        sink.touch(ob);
    }
    if crdt.class() == EffectorClass::Idempotent {
        sink.touch(OB_PROP6);
    }
    if crdt.class() == EffectorClass::UniquelyIdentified {
        sink.touch(OB_ARG_ORDER);
    }
    let mut state_keys = BTreeSet::new();
    let mut seen_configs = BTreeSet::new();
    let root = Node {
        cluster: StateCluster::new(crdt.clone(), n),
        trace: Vec::new(),
        updates: 0,
        sends: 0,
        applied: BTreeSet::new(),
    };
    seen_configs.insert(crate::fnv1a(config_key(&root.cluster).as_bytes()));
    let mut stack = vec![root];
    let mut configs = 0usize;
    let mut witness: Option<Vec<StEvent<<C as StateBased>::Call>>> = None;

    'search: while let Some(node) = stack.pop() {
        configs += 1;
        for r in 0..n {
            state_keys.insert(format!("{:?}", node.cluster.state(ReplicaId(r as u32))));
        }
        check_config(crdt, &node.cluster, &mut sink);
        if sink.violation().is_some() {
            witness = Some(node.trace);
            break;
        }
        if node.updates < k {
            for r in 0..n {
                for call in crdt.scope_calls(node.updates, k) {
                    let mut next = node.cluster.clone();
                    let pre = next.state(ReplicaId(r as u32)).clone();
                    let Some(inv) = next.invoke(ReplicaId(r as u32), call.clone()) else {
                        continue;
                    };
                    check_invoke_edge(crdt, &pre, &next, inv.op, &mut sink);
                    let mut trace = node.trace.clone();
                    trace.push(StEvent::Invoke {
                        id: node.updates,
                        replica: r as u32,
                        call,
                    });
                    if sink.violation().is_some() {
                        witness = Some(trace);
                        break 'search;
                    }
                    let key = crate::fnv1a(config_key_of(&next, &node.applied).as_bytes());
                    if seen_configs.insert(key) {
                        stack.push(Node {
                            cluster: next,
                            trace,
                            updates: node.updates + 1,
                            sends: node.sends,
                            applied: node.applied.clone(),
                        });
                    }
                }
            }
        }
        if node.sends < MAX_SENDS {
            for r in 0..n {
                let mut next = node.cluster.clone();
                next.send(ReplicaId(r as u32));
                let key = crate::fnv1a(config_key_of(&next, &node.applied).as_bytes());
                if seen_configs.insert(key) {
                    let mut trace = node.trace.clone();
                    trace.push(StEvent::Send {
                        id: node.sends,
                        replica: r as u32,
                    });
                    stack.push(Node {
                        cluster: next,
                        trace,
                        updates: node.updates,
                        sends: node.sends + 1,
                        applied: node.applied.clone(),
                    });
                }
            }
        }
        for m in 0..node.cluster.n_messages() {
            for r in 0..n {
                // Skip the origin (its state already dominates the snapshot)
                // and duplicate applications on the same path.
                if node.cluster.message_origin(m) == ReplicaId(r as u32)
                    || node.applied.contains(&(r as u32, m))
                {
                    continue;
                }
                let mut next = node.cluster.clone();
                next.apply(ReplicaId(r as u32), m);
                let mut applied = node.applied.clone();
                applied.insert((r as u32, m));
                let key = crate::fnv1a(config_key_of(&next, &applied).as_bytes());
                if seen_configs.insert(key) {
                    let mut trace = node.trace.clone();
                    // Message ids are dense: message `m` is send id `m`.
                    trace.push(StEvent::Apply {
                        replica: r as u32,
                        of: m,
                    });
                    stack.push(Node {
                        cluster: next,
                        trace,
                        updates: node.updates,
                        sends: node.sends,
                        applied,
                    });
                }
            }
        }
    }

    let violation = witness.map(|trace| {
        let kind = sink.violation().expect("witness implies violation").0;
        let shrunk = shrink_trace(&trace, |candidate| {
            replay_state(crdt, n, candidate).1.violated(kind)
        });
        let detail = replay_state(crdt, n, &shrunk)
            .1
            .violation()
            .map(|(_, d)| d.to_string())
            .unwrap_or_default();
        let ops = shrunk
            .iter()
            .filter(|e| matches!(e, StEvent::Invoke { .. }))
            .count();
        Violation {
            detail,
            trace: render_state_trace(n, &shrunk),
            ops,
        }
    });
    StateAnalysis {
        report: TypeReport {
            name: name.to_string(),
            style: "state",
            scope: k,
            configs,
            obligations: sink.into_obligations(violation),
        },
        state_keys,
    }
}

/// Replays a (possibly shrunk) trace with skip-inapplicable semantics,
/// running edge checks on every surviving invocation and the configuration
/// checks after every event.
pub(crate) fn replay_state<C>(
    crdt: &C,
    n_replicas: usize,
    events: &[StEvent<<C as StateBased>::Call>],
) -> (StateCluster<C>, Sink)
where
    C: LocalEffector + DeltaCrdt + Clone,
{
    let mut cluster = StateCluster::new(crdt.clone(), n_replicas);
    let mut sink = Sink::new();
    // Send id -> message index, for the sends that survived shrinking.
    let mut message_of: BTreeMap<usize, usize> = BTreeMap::new();
    check_config(crdt, &cluster, &mut sink);
    for ev in events {
        match ev {
            StEvent::Invoke { replica, call, .. } => {
                let r = ReplicaId(*replica);
                let pre = cluster.state(r).clone();
                if let Some(inv) = cluster.invoke(r, call.clone()) {
                    check_invoke_edge(crdt, &pre, &cluster, inv.op, &mut sink);
                }
            }
            StEvent::Send { id, replica } => {
                let m = cluster.send(ReplicaId(*replica));
                message_of.insert(*id, m);
            }
            StEvent::Apply { replica, of } => {
                if let Some(&m) = message_of.get(of) {
                    cluster.apply(ReplicaId(*replica), m);
                }
            }
        }
        check_config(crdt, &cluster, &mut sink);
    }
    (cluster, sink)
}

/// Prop5 and the delta decomposition law on one invocation edge
/// `pre → post` (the cluster's `op`-th history record).
fn check_invoke_edge<C>(
    crdt: &C,
    pre: &C::State,
    cluster: &StateCluster<C>,
    op: usize,
    sink: &mut Sink,
) where
    C: LocalEffector + DeltaCrdt,
{
    let record = cluster.history().op(op);
    let post = cluster.state(record.replica);
    match crdt.effector_arg(&record.label, record.replica, record.ts) {
        Some(arg) => {
            let mut replay = pre.clone();
            crdt.apply_arg(&mut replay, &arg);
            sink.check(OB_PROP5, replay == *post, || {
                format!(
                    "Prop5: apply_arg({arg:?}) on {pre:?} gives {replay:?}, \
                     but the invocation produced {post:?}"
                )
            });
        }
        None => {
            sink.check(OB_PROP5, pre == post, || {
                format!("Prop5: query changed the state from {pre:?} to {post:?}")
            });
        }
    }
    if pre != post {
        let delta = crdt.diff(pre, post);
        let rejoined = crdt.join(pre, &delta);
        sink.check(OB_DELTA, rejoined == *post, || {
            format!(
                "delta decomposition: join(pre, diff(pre, post)) = {rejoined:?} \
                 but post = {post:?}"
            )
        });
    }
}

/// Discharges the configuration-level obligations over the state set
/// (replica states + in-flight snapshots) and the recorded history.
fn check_config<C>(crdt: &C, cluster: &StateCluster<C>, sink: &mut Sink)
where
    C: LocalEffector + DeltaCrdt,
{
    let n = cluster.n_replicas();
    let mut states: Vec<&C::State> = (0..n).map(|r| cluster.state(ReplicaId(r as u32))).collect();
    states.extend((0..cluster.n_messages()).map(|m| cluster.message_state(m)));
    // Equal states are interchangeable in every check below.
    let mut uniq: Vec<&C::State> = Vec::new();
    for s in states {
        if !uniq.contains(&s) {
            uniq.push(s);
        }
    }
    let states = uniq;

    let h = cluster.history();
    let args: Vec<(usize, C::Arg)> = (0..h.len())
        .filter_map(|i| {
            crdt.effector_arg(h.label(i), h.op(i).replica, h.op(i).ts)
                .map(|a| (i, a))
        })
        .collect();

    // Prop4 + lattice laws first: they are the foundation the other
    // properties quantify over, so a type that is not even a semilattice
    // (e.g. the SummingCounter fixture) is reported as a lattice violation
    // rather than as whichever of Prop1–Prop3 happens to trip over it.
    for a in &states {
        sink.check(OB_PROP4, crdt.merge(a, a) == **a, || {
            format!("merge is not idempotent on {a:?}")
        });
        for b in &states {
            let ab = crdt.merge(a, b);
            sink.check(OB_PROP4, ab == crdt.merge(b, a), || {
                format!("merge is not commutative on {a:?} / {b:?}")
            });
            sink.check(OB_PROP4, crdt.leq(a, &ab) && crdt.leq(b, &ab), || {
                format!("merge of {a:?} / {b:?} is not an upper bound w.r.t. leq")
            });
            for c in &states {
                sink.check(
                    OB_PROP4,
                    crdt.merge(&ab, c) == crdt.merge(a, &crdt.merge(b, c)),
                    || format!("merge is not associative on {a:?} / {b:?} / {c:?}"),
                );
                if crdt.leq(a, b) {
                    sink.check(
                        OB_PROP4,
                        crdt.leq(&crdt.merge(a, c), &crdt.merge(b, c)),
                        || {
                            format!(
                                "merge is not monotone: {a:?} ⊑ {b:?} but not after merging {c:?}"
                            )
                        },
                    );
                }
            }
        }
    }

    // Prop1 / Prop1′.
    for (i, (op1, a1)) in args.iter().enumerate() {
        for (op2, a2) in &args[i + 1..] {
            if crdt.class() == EffectorClass::UniquelyIdentified && !h.concurrent(*op1, *op2) {
                continue;
            }
            for s in &states {
                let mut ab = (*s).clone();
                crdt.apply_arg(&mut ab, a1);
                crdt.apply_arg(&mut ab, a2);
                let mut ba = (*s).clone();
                crdt.apply_arg(&mut ba, a2);
                crdt.apply_arg(&mut ba, a1);
                sink.check(OB_PROP1, ab == ba, || {
                    format!("Prop1: {a1:?} and {a2:?} do not commute on {s:?}: {ab:?} vs {ba:?}")
                });
            }
        }
    }

    // Prop2 / Prop3.
    let unconditional_p3 = crdt.class() != EffectorClass::UniquelyIdentified;
    for s1 in &states {
        for s2 in &states {
            for (_, arg) in &args {
                let p_both = crdt.p_pred(s1, arg) && crdt.p_pred(s2, arg);
                if p_both {
                    let mut applied2 = (*s2).clone();
                    crdt.apply_arg(&mut applied2, arg);
                    let lhs = crdt.merge(s1, &applied2);
                    let mut rhs = crdt.merge(s1, s2);
                    crdt.apply_arg(&mut rhs, arg);
                    sink.check(OB_PROP2, lhs == rhs, || {
                        format!("Prop2 fails for {arg:?} on {s1:?} / {s2:?}")
                    });
                }
                if p_both || unconditional_p3 {
                    let mut applied1 = (*s1).clone();
                    crdt.apply_arg(&mut applied1, arg);
                    let mut applied2 = (*s2).clone();
                    crdt.apply_arg(&mut applied2, arg);
                    let lhs = crdt.merge(&applied1, &applied2);
                    let mut rhs = crdt.merge(s1, s2);
                    crdt.apply_arg(&mut rhs, arg);
                    sink.check(OB_PROP3, lhs == rhs, || {
                        format!("Prop3 fails for {arg:?} on {s1:?} / {s2:?}")
                    });
                }
            }
        }
    }

    // Prop6 (idempotent class).
    if crdt.class() == EffectorClass::Idempotent {
        for s in &states {
            for (_, arg) in &args {
                let mut once = (*s).clone();
                crdt.apply_arg(&mut once, arg);
                let mut twice = once.clone();
                crdt.apply_arg(&mut twice, arg);
                sink.check(OB_PROP6, once == twice, || {
                    format!("Prop6: {arg:?} is not idempotent on {s:?}")
                });
            }
        }
    }

    // Lemma E.1/E.2 (uniquely-identified class).
    if crdt.class() == EffectorClass::UniquelyIdentified {
        for (i, (op1, a1)) in args.iter().enumerate() {
            for (op2, a2) in &args[i + 1..] {
                sink.check(OB_ARG_ORDER, a1 != a2, || {
                    format!("argument {a1:?} of ops {op1}/{op2} is not unique")
                });
                if a1 == a2 {
                    continue;
                }
                if h.sees(*op2, *op1) {
                    sink.check(OB_ARG_ORDER, crdt.arg_lt(a1, a2), || {
                        format!("visibility {op1}≺{op2} but not {a1:?} < {a2:?}")
                    });
                } else if h.sees(*op1, *op2) {
                    sink.check(OB_ARG_ORDER, crdt.arg_lt(a2, a1), || {
                        format!("visibility {op2}≺{op1} but not {a2:?} < {a1:?}")
                    });
                } else if crdt.concurrent_incomparable() {
                    sink.check(
                        OB_ARG_ORDER,
                        !crdt.arg_lt(a1, a2) && !crdt.arg_lt(a2, a1),
                        || format!("concurrent ops {op1}, {op2} have comparable args"),
                    );
                }
            }
        }
    }

    // Timestamp discipline.
    for i in 0..h.len() {
        let Some(ts) = h.op(i).ts else { continue };
        for p in h.preds(i).iter() {
            sink.check(OB_TS, Some(ts) > h.op(p).ts, || {
                format!(
                    "op {i} generated ts {ts} not above visible op {p} (ts {:?})",
                    h.op(p).ts
                )
            });
        }
        for j in 0..i {
            if h.op(j).ts == Some(ts) {
                sink.check(OB_TS, false, || {
                    format!("ops {j} and {i} share timestamp {ts}")
                });
            }
        }
    }

    // Delta laws: resynchronization and batching.
    for a in &states {
        for b in &states {
            let resync = crdt.join(a, &crdt.full_delta(b));
            sink.check(OB_DELTA, resync == crdt.merge(a, b), || {
                format!("delta resync: join(a, full_delta(b)) ≠ merge(a, b) for {a:?} / {b:?}")
            });
            for t in &states {
                let da = crdt.full_delta(a);
                let db = crdt.full_delta(b);
                let one_by_one = crdt.join(&crdt.join(t, &da), &db);
                let batched = crdt.join(t, &crdt.join_deltas(&da, &db));
                sink.check(OB_DELTA, one_by_one == batched, || {
                    format!("delta batching differs on {t:?} with deltas of {a:?} / {b:?}")
                });
            }
        }
    }
}

fn config_key<C: StateBased>(node_cluster: &StateCluster<C>) -> String {
    config_key_of(node_cluster, &BTreeSet::new())
}

/// A canonical rendering of a configuration: replica states and seen sets,
/// in-flight messages (origin, state, seen), which (replica, message) pairs
/// this path has applied, and the history.
fn config_key_of<C: StateBased>(
    cluster: &StateCluster<C>,
    applied: &BTreeSet<(u32, usize)>,
) -> String {
    let mut s = String::new();
    let n = cluster.n_replicas();
    for r in 0..n {
        let r = ReplicaId(r as u32);
        let _ = write!(
            s,
            "R{:?}|{:?};",
            cluster.state(r),
            cluster.seen(r).iter().collect::<Vec<_>>()
        );
    }
    for m in 0..cluster.n_messages() {
        let _ = write!(
            s,
            "M{:?}|{:?}|{:?};",
            cluster.message_origin(m),
            cluster.message_state(m),
            cluster.message_seen(m).iter().collect::<Vec<_>>()
        );
    }
    let _ = write!(s, "A{applied:?};");
    let h = cluster.history();
    for i in 0..h.len() {
        let _ = write!(
            s,
            "H{:?}|{:?}|{:?}|{:?};",
            h.label(i),
            h.op(i).replica,
            h.op(i).ts,
            h.preds(i).iter().collect::<Vec<_>>()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_crdts::PnCounter;

    #[test]
    fn pn_counter_discharges_at_small_scope() {
        let analysis = analyze_state(&PnCounter, "PN-Counter", 2);
        assert!(analysis.report.discharged(), "{}", analysis.report);
        assert!(analysis.report.configs > 10);
    }

    #[test]
    fn replay_skips_events_of_removed_sends() {
        use ral_crdts::state::pn_counter::PnCall;
        let events = vec![
            StEvent::Invoke {
                id: 0,
                replica: 0,
                call: PnCall::Inc,
            },
            // send#0 was shrunk away; this apply must be skipped.
            StEvent::Apply { replica: 1, of: 0 },
            StEvent::Send { id: 1, replica: 0 },
            StEvent::Apply { replica: 1, of: 1 },
        ];
        let (cluster, sink) = replay_state(&PnCounter, 3, &events);
        assert!(sink.violation().is_none());
        assert_eq!(cluster.state(ReplicaId(0)), cluster.state(ReplicaId(1)));
    }
}
