//! Result types shared by the obligation engines.

use std::collections::BTreeMap;
use std::fmt;

/// A refutation: the obligation's violation witness, shrunk to a 1-minimal
/// replayable event trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// What exactly failed (states, arguments, expected vs. actual).
    pub detail: String,
    /// The shrunk trace, one event per line, replayable against the engine.
    pub trace: String,
    /// Number of update invocations in the shrunk trace.
    pub ops: usize,
}

/// The verdict for one obligation family of one data type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Obligation {
    /// Obligation key, e.g. `"commutativity"` or `"merge-idempotence"`.
    pub name: String,
    /// Number of individual checks discharged.
    pub checks: u64,
    /// The counterexample, when refuted.
    pub violation: Option<Violation>,
}

/// Everything the analyzer established about one data type at one scope.
#[derive(Clone, Debug)]
pub struct TypeReport {
    /// Data type name, e.g. `"OpCounter"`.
    pub name: String,
    /// `"op"`, `"state"`, or `"composed"`.
    pub style: &'static str,
    /// The scope bound `k` (maximum update invocations per execution).
    pub scope: usize,
    /// Number of distinct cluster configurations explored.
    pub configs: usize,
    /// Per-obligation verdicts.
    pub obligations: Vec<Obligation>,
}

impl TypeReport {
    /// `true` when every obligation was discharged (no violations).
    pub fn discharged(&self) -> bool {
        self.obligations.iter().all(|o| o.violation.is_none())
    }

    /// The first violation, if any.
    pub fn violation(&self) -> Option<(&str, &Violation)> {
        self.obligations
            .iter()
            .find_map(|o| o.violation.as_ref().map(|v| (o.name.as_str(), v)))
    }
}

impl fmt::Display for TypeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} ({}, k={}): {} configurations",
            self.name, self.style, self.scope, self.configs
        )?;
        for o in &self.obligations {
            match &o.violation {
                None => writeln!(f, "  {:<24} {:>8} checks  discharged", o.name, o.checks)?,
                Some(v) => {
                    writeln!(
                        f,
                        "  {:<24} {:>8} checks  REFUTED ({} ops): {}",
                        o.name, o.checks, v.ops, v.detail
                    )?;
                    for line in v.trace.lines() {
                        writeln!(f, "      {line}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

/// The engines' running check accumulator: per-obligation counts plus the
/// first violation seen (one counterexample refutes; later ones add noise).
#[derive(Clone, Debug, Default)]
pub(crate) struct Sink {
    counts: BTreeMap<&'static str, u64>,
    violation: Option<(&'static str, String)>,
}

impl Sink {
    pub(crate) fn new() -> Self {
        Sink::default()
    }

    /// Records one check of `kind`; on the first failure, captures `detail`.
    pub(crate) fn check(&mut self, kind: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        *self.counts.entry(kind).or_insert(0) += 1;
        if !ok && self.violation.is_none() {
            self.violation = Some((kind, detail()));
        }
    }

    /// Ensures `kind` appears in the output even if no check of it ran.
    pub(crate) fn touch(&mut self, kind: &'static str) {
        self.counts.entry(kind).or_insert(0);
    }

    pub(crate) fn violation(&self) -> Option<(&'static str, &str)> {
        self.violation.as_ref().map(|(k, d)| (*k, d.as_str()))
    }

    /// Whether a violation of exactly `kind` has been recorded.
    pub(crate) fn violated(&self, kind: &str) -> bool {
        self.violation.as_ref().is_some_and(|(k, _)| *k == kind)
    }

    /// Converts the accumulated counts into [`Obligation`] rows, attaching
    /// `violation` (with its shrunk trace) to the obligation it refutes.
    pub(crate) fn into_obligations(self, violation: Option<Violation>) -> Vec<Obligation> {
        let violated_kind = self.violation.as_ref().map(|(k, _)| *k);
        self.counts
            .into_iter()
            .map(|(name, checks)| Obligation {
                name: name.to_string(),
                checks,
                violation: if Some(name) == violated_kind {
                    violation.clone()
                } else {
                    None
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_keeps_first_violation() {
        let mut s = Sink::new();
        s.check("a", true, || unreachable!());
        s.check("a", false, || "first".into());
        s.check("b", false, || "second".into());
        assert_eq!(s.violation(), Some(("a", "first")));
        assert!(s.violated("a"));
        assert!(!s.violated("b"));
        let obs = s.into_obligations(Some(Violation {
            detail: "first".into(),
            trace: "t".into(),
            ops: 1,
        }));
        assert_eq!(obs.len(), 2);
        assert!(obs.iter().any(|o| o.name == "a" && o.violation.is_some()));
        assert!(obs.iter().any(|o| o.name == "b" && o.violation.is_none()));
    }
}
