//! The roster of analyses one `ral-analyze` run performs.
//!
//! Every shipped CRDT is analyzed by the engine matching its replication
//! style, the two-object composition is analyzed under both timestamp
//! modes, and the two negative fixtures are analyzed *expecting* a
//! refutation. Keeping the roster in one place means the CLI, the CI gate,
//! and the integration tests cannot drift apart on what "all shipped
//! types" means.

use crate::fixtures::{BrokenCounter, SummingCounter};
use crate::op_engine::analyze_op;
use crate::outcome::TypeReport;
use crate::state_engine::analyze_state;
use crate::ts_engine::analyze_ts;
use ral_crdts::{
    LwwElementSet, LwwRegister, MvRegister, OpCounter, OrSet, PnCounter, Rga, RgaAddAt,
    TwoPhaseSet, Wooki,
};

/// Analyzes every shipped CRDT (both styles) plus the composed cluster at
/// scope `k`; the returned reports must all be discharged for the gate to
/// pass.
pub fn analyze_shipped(k: usize) -> Vec<TypeReport> {
    let mut out = vec![
        // Operation-based types (Section 4 / Appendix C).
        analyze_op(&OpCounter, "OpCounter", k).report,
        analyze_op(&LwwRegister::<u8>::new(), "LwwRegister<u8>", k).report,
        analyze_op(&OrSet::<u8>::new(), "OrSet<u8>", k).report,
        analyze_op(&Rga::<u16>::new(), "Rga<u16>", k).report,
        analyze_op(&RgaAddAt::<u16>::new(), "RgaAddAt<u16>", k).report,
        analyze_op(&Wooki::<u16>::new(), "Wooki<u16>", k).report,
        // State-based types (Appendix D) — also exercises the delta laws.
        analyze_state(&PnCounter, "PnCounter", k).report,
        analyze_state(&MvRegister::<u8>::new(), "MvRegister<u8>", k).report,
        analyze_state(&LwwElementSet::<u8>::new(), "LwwElementSet<u8>", k).report,
        analyze_state(&TwoPhaseSet::<u16>::new(), "TwoPhaseSet<u16>", k).report,
    ];
    // Composed cluster under ⊗ and ⊗ts (Section 5).
    out.extend(analyze_ts(k));
    out
}

/// Analyzes the deliberately broken fixtures at scope `k`; the returned
/// reports must all be **refuted** (with a shrunk counterexample) for the
/// gate to pass — this is the analyzer's own negative control.
pub fn analyze_fixtures(k: usize) -> Vec<TypeReport> {
    vec![
        analyze_op(&BrokenCounter, "BrokenCounter (fixture)", k).report,
        analyze_state(&SummingCounter, "SummingCounter (fixture)", k).report,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_refuted_with_small_counterexamples() {
        for report in analyze_fixtures(2) {
            let (_, v) = report
                .violation()
                .unwrap_or_else(|| panic!("fixture must be refuted: {report}"));
            assert!(v.ops <= 4, "counterexample too large: {} ops", v.ops);
            assert!(!v.trace.is_empty());
        }
    }
}
