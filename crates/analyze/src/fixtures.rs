//! Deliberately broken CRDTs — the analyzer's negative controls.
//!
//! Each fixture violates exactly one obligation in a way the seeded random
//! suites could plausibly miss on an unlucky seed, but a bounded-exhaustive
//! search cannot: the violating configuration is reachable within two
//! operations. The registry runs both and *requires* the refutation — an
//! analyzer that stops refuting them has lost its teeth.

use ral_core::scope::SmallScope;
use ral_runtime::gen::{GenCtx, GenOutcome};
use ral_runtime::op_based::OpBased;
use ral_runtime::state_based::{StateBased, StateOutcome};

/// Calls of [`BrokenCounter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BrokenCall {
    /// Increment.
    Inc,
    /// Decrement.
    Dec,
}

/// An operation-based counter whose effector is **not commutative**: the
/// generator computes the post-increment value at the origin and the
/// effector *assigns* it, so concurrent effectors race on arrival order —
/// the classic "compute locally, ship the result" replication bug.
///
/// `ral-analyze` refutes this type with a two-invocation counterexample:
/// at scope 2 the DFS first hits `effector-commutativity` (concurrent
/// `Inc` and `Dec` assign `1` and `-1`); deeper scopes may instead report
/// the downstream `quiescent-convergence` symptom of the same bug.
#[derive(Clone, Copy, Debug, Default)]
pub struct BrokenCounter;

impl OpBased for BrokenCounter {
    type State = i64;
    type Call = BrokenCall;
    type Ret = i64;
    type Eff = i64;
    type Label = BrokenCall;

    fn initial(&self) -> i64 {
        0
    }

    fn generator(&self, state: &i64, call: &BrokenCall, _ctx: &mut GenCtx) -> GenOutcome<i64, i64> {
        let next = match call {
            BrokenCall::Inc => state + 1,
            BrokenCall::Dec => state - 1,
        };
        // BUG: ships the origin-computed absolute value instead of the
        // increment; `apply` then assigns rather than adds.
        GenOutcome::update(next, next)
    }

    fn apply(&self, state: &mut i64, eff: &i64) {
        *state = *eff;
    }

    fn label(&self, call: &BrokenCall, _ret: &i64) -> BrokenCall {
        call.clone()
    }
}

impl SmallScope for BrokenCounter {
    type Call = BrokenCall;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    fn scope_calls(&self, _op_index: usize, _k: usize) -> Vec<BrokenCall> {
        vec![BrokenCall::Inc, BrokenCall::Dec]
    }
}

/// Calls of [`SummingCounter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SumCall {
    /// Increment.
    Inc,
}

/// A state-based counter whose `merge` **adds** the two states instead of
/// taking a least upper bound — so `merge` is not idempotent and the states
/// do not form a join semilattice. A duplicated snapshot delivery (which
/// the Appendix D.2 network is free to produce) double-counts.
///
/// `ral-analyze` refutes `prop4-lattice` with a one-invocation
/// counterexample: after a single `Inc`, `merge(1, 1) = 2 ≠ 1`.
#[derive(Clone, Copy, Debug, Default)]
pub struct SummingCounter;

impl StateBased for SummingCounter {
    type State = i64;
    type Call = SumCall;
    type Ret = i64;
    type Label = SumCall;

    fn initial(&self, _n_replicas: usize) -> i64 {
        0
    }

    fn invoke(&self, state: &i64, call: &SumCall, _ctx: &mut GenCtx) -> StateOutcome<i64, i64> {
        match call {
            SumCall::Inc => StateOutcome::Done {
                ret: state + 1,
                next: state + 1,
            },
        }
    }

    // BUG: addition is not a least upper bound (not idempotent).
    fn merge(&self, a: &i64, b: &i64) -> i64 {
        a + b
    }

    fn leq(&self, a: &i64, b: &i64) -> bool {
        a <= b
    }

    fn label(&self, call: &SumCall, _ret: &i64) -> SumCall {
        call.clone()
    }
}

impl ral_crdts::state::local::LocalEffector for SummingCounter {
    type Arg = i64;

    fn effector_arg(
        &self,
        label: &SumCall,
        _origin: ral_core::ids::ReplicaId,
        _ts: Option<ral_core::timestamp::Ts>,
    ) -> Option<i64> {
        match label {
            SumCall::Inc => Some(1),
        }
    }

    fn apply_arg(&self, state: &mut i64, arg: &i64) {
        *state += arg;
    }

    fn class(&self) -> ral_crdts::state::local::EffectorClass {
        ral_crdts::state::local::EffectorClass::Cumulative
    }

    fn p_pred(&self, _state: &i64, _arg: &i64) -> bool {
        true
    }
}

impl ral_runtime::delta::DeltaCrdt for SummingCounter {
    type Delta = i64;

    fn diff(&self, pre: &i64, post: &i64) -> i64 {
        post - pre
    }

    fn join(&self, state: &i64, delta: &i64) -> i64 {
        state + delta
    }

    fn join_deltas(&self, a: &i64, b: &i64) -> i64 {
        a + b
    }

    fn full_delta(&self, state: &i64) -> i64 {
        *state
    }

    fn delta_bytes(&self, _delta: &i64) -> usize {
        8
    }

    fn state_bytes(&self, _state: &i64) -> usize {
        8
    }
}

impl SmallScope for SummingCounter {
    type Call = SumCall;

    fn scope_replicas(&self, _k: usize) -> usize {
        3
    }

    fn scope_calls(&self, _op_index: usize, _k: usize) -> Vec<SumCall> {
        vec![SumCall::Inc]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_core::ids::ReplicaId;
    use ral_runtime::op_based::Cluster;
    use ral_runtime::state_based::StateCluster;

    #[test]
    fn broken_counter_diverges_under_concurrent_updates() {
        let mut c = Cluster::new(BrokenCounter, 2);
        c.invoke(ReplicaId(0), BrokenCall::Inc).unwrap();
        c.invoke(ReplicaId(1), BrokenCall::Dec).unwrap();
        c.deliver_all();
        assert!(!c.converged(), "the broken effector must lose an update");
    }

    #[test]
    fn summing_counter_double_counts_duplicates() {
        let mut c = StateCluster::new(SummingCounter, 2);
        c.invoke(ReplicaId(0), SumCall::Inc).unwrap();
        let m = c.send(ReplicaId(0));
        c.apply(ReplicaId(1), m);
        c.apply(ReplicaId(1), m);
        assert_eq!(c.state(ReplicaId(1)), &2, "duplicate delivery doubled");
    }
}
