//! `ANALYZE_report.json` — the machine-readable artifact the CI gate
//! uploads.
//!
//! Hand-rolled serialization (the workspace carries no serde); the shape
//! is stable so downstream tooling can diff runs:
//!
//! ```json
//! {
//!   "scope": 3,
//!   "obligations": [
//!     {"type": "OpCounter", "style": "op", "scope": 3, "configs": 1234,
//!      "rows": [{"obligation": "effector-commutativity", "checks": 99,
//!                "verdict": "discharged"}]}
//!   ],
//!   "expected_refutations": [...],
//!   "lint": {"files_scanned": 71, "allowed": 3, "hits": [], "stale_allow": []}
//! }
//! ```

use crate::lint::LintOutcome;
use crate::outcome::TypeReport;
use std::fmt::Write as _;

/// Escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn type_report_json(r: &TypeReport, expected_refuted: bool) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"type\": {}, \"style\": {}, \"scope\": {}, \"configs\": {}, ",
        json_string(&r.name),
        json_string(r.style),
        r.scope,
        r.configs
    );
    if expected_refuted {
        let _ = write!(
            out,
            "\"refuted\": {}, ",
            if r.discharged() { "false" } else { "true" }
        );
    }
    out.push_str("\"rows\": [");
    for (i, ob) in r.obligations.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"obligation\": {}, \"checks\": {}, ",
            json_string(&ob.name),
            ob.checks
        );
        match &ob.violation {
            None => out.push_str("\"verdict\": \"discharged\"}"),
            Some(v) => {
                let _ = write!(
                    out,
                    "\"verdict\": \"refuted\", \"detail\": {}, \"ops\": {}, \"trace\": {}}}",
                    json_string(&v.detail),
                    v.ops,
                    json_string(&v.trace)
                );
            }
        }
    }
    out.push_str("]}");
    out
}

fn lint_json(lint: &LintOutcome) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"files_scanned\": {}, \"allowed\": {}, \"hits\": [",
        lint.files_scanned, lint.allowed
    );
    for (i, h) in lint.hits.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"rule\": {}, \"path\": {}, \"line\": {}, \"snippet\": {}}}",
            json_string(h.rule),
            json_string(&h.path),
            h.line,
            json_string(&h.snippet)
        );
    }
    out.push_str("], \"stale_allow\": [");
    for (i, s) in lint.stale_allow.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_string(s));
    }
    out.push_str("]}");
    out
}

/// Renders the full report: obligation results for every shipped type, the
/// expected refutations of the negative fixtures, and the lint outcome.
pub fn render_report(
    scope: usize,
    shipped: &[TypeReport],
    fixtures: &[TypeReport],
    lint: &LintOutcome,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"scope\": {scope},");
    let _ = writeln!(out, "  \"obligations\": [");
    for (i, r) in shipped.iter().enumerate() {
        let sep = if i + 1 < shipped.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{}", type_report_json(r, false), sep);
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"expected_refutations\": [");
    for (i, r) in fixtures.iter().enumerate() {
        let sep = if i + 1 < fixtures.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{}", type_report_json(r, true), sep);
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"lint\": {}", lint_json(lint));
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{Obligation, Violation};

    fn sample_report(discharged: bool) -> TypeReport {
        TypeReport {
            name: "X".to_string(),
            style: "op",
            scope: 2,
            configs: 10,
            obligations: vec![Obligation {
                name: "effector-commutativity".to_string(),
                checks: 5,
                violation: (!discharged).then(|| Violation {
                    detail: "a \"quoted\" detail".to_string(),
                    trace: "line1\nline2\n".to_string(),
                    ops: 2,
                }),
            }],
        }
    }

    #[test]
    fn report_shape_is_stable() {
        let lint = LintOutcome::default();
        let json = render_report(3, &[sample_report(true)], &[sample_report(false)], &lint);
        assert!(json.contains("\"verdict\": \"discharged\""));
        assert!(json.contains("\"verdict\": \"refuted\""));
        assert!(json.contains("\"refuted\": true"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("line1\\nline2"));
        // Balanced braces/brackets as a cheap well-formedness proxy
        // (strings contain no structural characters in this sample).
        assert_eq!(json.matches('{').count(), json.matches('}').count(),);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
