//! Bounded-exhaustive obligation checking for operation-based CRDTs.
//!
//! The search enumerates **every** configuration a [`Cluster`] can reach
//! within `k` update invocations: at each configuration it branches on every
//! [`SmallScope`] call at every replica (pruned when the generator refuses)
//! and on every causally deliverable effector at every replica. Distinct
//! interleavings that produce the same configuration are deduplicated by a
//! rendered configuration key, so the exploration is over the *reachable
//! state graph*, not the execution tree.
//!
//! On every configuration the engine discharges:
//!
//! * **`effector-commutativity`** — Prop1: whenever the effectors of two
//!   concurrent operations are both deliverable at a replica (under causal
//!   delivery, simultaneous deliverability *implies* concurrency), applying
//!   them in either order must yield the same state. This is the premise of
//!   the paper's Theorem 4.2 for operation-based types.
//! * **`ts-discipline`** — the OPERATION rule's side condition (Figure 7):
//!   every generated timestamp strictly exceeds every timestamp visible at
//!   the origin, and timestamps are globally unique.
//! * **`quiescent-convergence`** — strong eventual consistency: once no
//!   delivery is pending, all replicas hold equal states.
//!
//! A violated obligation halts the search; the witness trace is shrunk with
//! [`shrink_trace`] to a 1-minimal replayable event sequence.

use crate::outcome::{Sink, TypeReport, Violation};
use crate::shrink::shrink_trace;
use ral_core::ids::ReplicaId;
use ral_core::scope::SmallScope;
use ral_runtime::op_based::{Cluster, OpBased};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::{self, Debug, Write as _};

/// Obligation key: Prop1 effector commutativity of concurrent operations.
pub const OB_COMMUTE: &str = "effector-commutativity";
/// Obligation key: timestamp freshness + uniqueness (Figure 7 side condition).
pub const OB_TS: &str = "ts-discipline";
/// Obligation key: equal states once no delivery is pending.
pub const OB_CONVERGE: &str = "quiescent-convergence";

/// One event of an operation-based execution trace.
///
/// `id` names the invocation stably across shrinking: a [`OpEvent::Deliver`]
/// refers to the invocation by `id`, not by position, so removing unrelated
/// events never re-targets a delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpEvent<Call> {
    /// Run the generator of `call` at `replica`.
    Invoke {
        /// Stable invocation id (dense in the original trace).
        id: usize,
        /// Origin replica.
        replica: u32,
        /// The generator call.
        call: Call,
    },
    /// Apply the effector of invocation `of` at `replica`.
    Deliver {
        /// Receiving replica.
        replica: u32,
        /// The `id` of the [`OpEvent::Invoke`] whose effector is applied.
        of: usize,
    },
}

impl<Call: Debug> fmt::Display for OpEvent<Call> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpEvent::Invoke { id, replica, call } => {
                write!(f, "invoke#{id} at r{replica}: {call:?}")
            }
            OpEvent::Deliver { replica, of } => write!(f, "deliver invoke#{of} at r{replica}"),
        }
    }
}

/// Renders a trace as the replayable fixture format used in reports and
/// golden files.
pub fn render_op_trace<Call: Debug>(n_replicas: usize, events: &[OpEvent<Call>]) -> String {
    let mut out = format!("cluster with {n_replicas} replicas\n");
    for ev in events {
        let _ = writeln!(out, "{ev}");
    }
    out
}

/// The result of analyzing one operation-based CRDT.
pub struct OpAnalysis {
    /// Per-obligation verdicts.
    pub report: TypeReport,
    /// `Debug` renderings of every individual replica state the search
    /// visited — the coverage set the cross-check suite compares the random
    /// walks against.
    pub state_keys: BTreeSet<String>,
}

struct Node<C: OpBased> {
    cluster: Cluster<C>,
    trace: Vec<OpEvent<C::Call>>,
    updates: usize,
}

/// Exhaustively explores `crdt` within scope `k` and discharges (or refutes,
/// with a shrunk counterexample) the operation-based obligations.
pub fn analyze_op<C>(crdt: &C, name: &str, k: usize) -> OpAnalysis
where
    C: OpBased + SmallScope<Call = <C as OpBased>::Call> + Clone,
{
    let n = crdt.scope_replicas(k);
    let mut sink = Sink::new();
    sink.touch(OB_COMMUTE);
    sink.touch(OB_TS);
    sink.touch(OB_CONVERGE);
    let mut state_keys = BTreeSet::new();
    let mut seen_configs = BTreeSet::new();
    let root = Node {
        cluster: Cluster::new(crdt.clone(), n),
        trace: Vec::new(),
        updates: 0,
    };
    seen_configs.insert(crate::fnv1a(config_key(&root.cluster, 0).as_bytes()));
    let mut stack = vec![root];
    let mut configs = 0usize;
    let mut witness: Option<Vec<OpEvent<<C as OpBased>::Call>>> = None;

    while let Some(node) = stack.pop() {
        configs += 1;
        for r in 0..n {
            state_keys.insert(format!("{:?}", node.cluster.state(ReplicaId(r as u32))));
        }
        check_config(&node.cluster, &mut sink);
        if sink.violation().is_some() {
            witness = Some(node.trace);
            break;
        }
        for r in 0..n {
            for d in node.cluster.deliverable(ReplicaId(r as u32)) {
                let mut next = node.cluster.clone();
                next.deliver(ReplicaId(r as u32), d);
                let key = crate::fnv1a(config_key(&next, node.updates).as_bytes());
                if seen_configs.insert(key) {
                    let mut trace = node.trace.clone();
                    // Delivery ids are dense, one per successful invocation,
                    // so in the unshrunk trace delivery `d` is invocation `d`.
                    trace.push(OpEvent::Deliver {
                        replica: r as u32,
                        of: d,
                    });
                    stack.push(Node {
                        cluster: next,
                        trace,
                        updates: node.updates,
                    });
                }
            }
        }
        // Invokes pushed last, so the LIFO stack explores invoke-rich
        // (shallow, concurrency-heavy) configurations first: a broken type
        // is then caught by the root-cause obligation (e.g. a
        // non-commutative pair of concurrent effectors) before one of its
        // downstream symptoms (divergence at quiescence) deep in a
        // fully-delivered path.
        if node.updates < k {
            for r in 0..n {
                for call in crdt.scope_calls(node.updates, k) {
                    let mut next = node.cluster.clone();
                    if next.invoke(ReplicaId(r as u32), call.clone()).is_none() {
                        continue; // generator refused: outside the client obligation
                    }
                    let key = crate::fnv1a(config_key(&next, node.updates + 1).as_bytes());
                    if seen_configs.insert(key) {
                        let mut trace = node.trace.clone();
                        trace.push(OpEvent::Invoke {
                            id: node.updates,
                            replica: r as u32,
                            call,
                        });
                        stack.push(Node {
                            cluster: next,
                            trace,
                            updates: node.updates + 1,
                        });
                    }
                }
            }
        }
    }

    let violation = witness.map(|trace| {
        let kind = sink.violation().expect("witness implies violation").0;
        let shrunk = shrink_trace(&trace, |candidate| {
            replay_op(crdt, n, candidate).1.violated(kind)
        });
        let detail = replay_op(crdt, n, &shrunk)
            .1
            .violation()
            .map(|(_, d)| d.to_string())
            .unwrap_or_default();
        let ops = shrunk
            .iter()
            .filter(|e| matches!(e, OpEvent::Invoke { .. }))
            .count();
        Violation {
            detail,
            trace: render_op_trace(n, &shrunk),
            ops,
        }
    });
    OpAnalysis {
        report: TypeReport {
            name: name.to_string(),
            style: "op",
            scope: k,
            configs,
            obligations: sink.into_obligations(violation),
        },
        state_keys,
    }
}

/// Replays a (possibly shrunk) trace with skip-inapplicable semantics,
/// running the per-configuration checks after every event.
///
/// Inapplicable events — a refused invoke, a delivery whose invocation was
/// removed, already applied, or not yet causally admissible — are skipped,
/// which is what makes arbitrary subsets of a witness trace replayable.
pub(crate) fn replay_op<C>(
    crdt: &C,
    n_replicas: usize,
    events: &[OpEvent<<C as OpBased>::Call>],
) -> (Cluster<C>, Sink)
where
    C: OpBased + Clone,
{
    let mut cluster = Cluster::new(crdt.clone(), n_replicas);
    let mut sink = Sink::new();
    // Invocation id -> delivery id, for the invokes that survived.
    let mut delivery_of: BTreeMap<usize, usize> = BTreeMap::new();
    check_config(&cluster, &mut sink);
    for ev in events {
        match ev {
            OpEvent::Invoke { id, replica, call } => {
                let d = cluster.n_deliveries();
                if cluster.invoke(ReplicaId(*replica), call.clone()).is_some() {
                    delivery_of.insert(*id, d);
                }
            }
            OpEvent::Deliver { replica, of } => {
                if let Some(&d) = delivery_of.get(of) {
                    if cluster.can_deliver(ReplicaId(*replica), d) {
                        cluster.deliver(ReplicaId(*replica), d);
                    }
                }
            }
        }
        check_config(&cluster, &mut sink);
    }
    (cluster, sink)
}

/// Discharges the operation-based obligations on one configuration.
fn check_config<C: OpBased>(cluster: &Cluster<C>, sink: &mut Sink) {
    let n = cluster.n_replicas();

    // Prop1: effectors of concurrent operations commute. Two deliveries that
    // are simultaneously deliverable at `r` are necessarily of concurrent
    // operations: if one saw the other, causal delivery would force the seen
    // one to be applied (hence not deliverable) first.
    for r in 0..n {
        let r = ReplicaId(r as u32);
        let ds = cluster.deliverable(r);
        for (i, &d1) in ds.iter().enumerate() {
            for &d2 in &ds[i + 1..] {
                let (Some(e1), Some(e2)) = (cluster.delivery_eff(d1), cluster.delivery_eff(d2))
                else {
                    continue; // identity effectors commute trivially
                };
                let mut ab = cluster.state(r).clone();
                cluster.crdt().apply(&mut ab, e1);
                cluster.crdt().apply(&mut ab, e2);
                let mut ba = cluster.state(r).clone();
                cluster.crdt().apply(&mut ba, e2);
                cluster.crdt().apply(&mut ba, e1);
                sink.check(OB_COMMUTE, ab == ba, || {
                    format!(
                        "concurrent effectors {e1:?} and {e2:?} do not commute on \
                         state {:?} at {r}: {ab:?} vs {ba:?}",
                        cluster.state(r)
                    )
                });
            }
        }
    }

    // Timestamp discipline: strictly above everything visible, globally
    // unique. `preds` is the origin's full applied set at invocation time,
    // so it is exactly the visible operations.
    let h = cluster.history();
    for i in 0..h.len() {
        let Some(ts) = h.op(i).ts else { continue };
        for p in h.preds(i).iter() {
            sink.check(OB_TS, Some(ts) > h.op(p).ts, || {
                format!(
                    "op {i} generated ts {ts} not above visible op {p} \
                     (ts {:?})",
                    h.op(p).ts
                )
            });
        }
        for j in 0..i {
            if h.op(j).ts == Some(ts) {
                sink.check(OB_TS, false, || {
                    format!("ops {j} and {i} share timestamp {ts}")
                });
            }
        }
    }

    // Strong eventual consistency at quiescence.
    if cluster.pending() == 0 && !h.is_empty() {
        sink.check(OB_CONVERGE, cluster.converged(), || {
            let states: Vec<String> = (0..n)
                .map(|r| format!("{:?}", cluster.state(ReplicaId(r as u32))))
                .collect();
            format!("all effectors delivered but replicas diverge: {states:?}")
        });
    }
}

/// A canonical rendering of a configuration: replica states and applied
/// sets, the delivery pool with per-replica delivery bits, and the history
/// (labels, origins, timestamps, visibility). Two configurations with equal
/// keys have identical futures, so the search visits each key once.
fn config_key<C: OpBased>(cluster: &Cluster<C>, updates: usize) -> String {
    let mut s = String::new();
    let _ = write!(s, "u{updates};");
    let n = cluster.n_replicas();
    for r in 0..n {
        let r = ReplicaId(r as u32);
        let _ = write!(
            s,
            "R{:?}|{:?};",
            cluster.state(r),
            cluster.seen(r).iter().collect::<Vec<_>>()
        );
    }
    for d in 0..cluster.n_deliveries() {
        let _ = write!(
            s,
            "D{}|{:?}|",
            cluster.delivery_op(d),
            cluster.delivery_eff(d)
        );
        for r in 0..n {
            let _ = write!(
                s,
                "{}",
                u8::from(cluster.is_delivered(d, ReplicaId(r as u32)))
            );
        }
        s.push(';');
    }
    let h = cluster.history();
    for i in 0..h.len() {
        let _ = write!(
            s,
            "H{:?}|{:?}|{:?}|{:?};",
            h.label(i),
            h.op(i).replica,
            h.op(i).ts,
            h.preds(i).iter().collect::<Vec<_>>()
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ral_crdts::OpCounter;

    #[test]
    fn counter_discharges_at_small_scope() {
        let analysis = analyze_op(&OpCounter, "Counter", 2);
        assert!(analysis.report.discharged(), "{}", analysis.report);
        assert!(analysis.report.configs > 10);
        // Reachable counter values within 2 ops: -2..=2.
        assert!(analysis.state_keys.contains("0"));
        assert!(analysis.state_keys.contains("2"));
        assert!(analysis.state_keys.contains("-2"));
    }

    /// Deliveries target invocations by id, so shrinking one invoke out of a
    /// trace must not re-target the remaining deliveries.
    #[test]
    fn replay_skips_inapplicable_events() {
        let events = vec![
            // invoke#0 was shrunk away; its delivery must be skipped, and
            // invoke#1's delivery must still land.
            OpEvent::Invoke {
                id: 1,
                replica: 0,
                call: ral_crdts::op::counter::CounterCall::Inc,
            },
            OpEvent::Deliver { replica: 1, of: 0 },
            OpEvent::Deliver { replica: 1, of: 1 },
            OpEvent::Deliver { replica: 2, of: 1 },
        ];
        let (cluster, sink) = replay_op(&OpCounter, 3, &events);
        assert!(sink.violation().is_none());
        assert!(cluster.converged());
        assert_eq!(cluster.state(ReplicaId(1)), &1);
    }

    #[test]
    fn trace_rendering_is_replayable_syntax() {
        let events = vec![
            OpEvent::Invoke {
                id: 0,
                replica: 0,
                call: ral_crdts::op::counter::CounterCall::Inc,
            },
            OpEvent::Deliver { replica: 1, of: 0 },
        ];
        let text = render_op_trace(3, &events);
        assert_eq!(
            text,
            "cluster with 3 replicas\ninvoke#0 at r0: Inc\ndeliver invoke#0 at r1\n"
        );
    }
}
