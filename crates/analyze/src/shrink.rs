//! Delta-debugging-style trace minimization.
//!
//! Counterexample traces come out of the exhaustive search with incidental
//! events (unrelated invokes, deliveries that played no part in the
//! violation). [`shrink_trace`] removes events greedily until the trace is
//! **1-minimal**: removing any single remaining event makes the violation
//! disappear. Engines replay candidate traces with a *skip-inapplicable*
//! semantics (a delivery whose invoke was removed is simply dropped), which
//! is what makes every subset of a trace a valid candidate — the same trick
//! ddmin uses on inputs.

/// Greedily removes events while `still_fails` holds on the remainder.
///
/// `still_fails` must replay the candidate trace and report whether the
/// *same obligation* is still violated. The result is 1-minimal w.r.t.
/// single-event removal; repeated sweeps handle events that only become
/// removable after others are gone.
pub fn shrink_trace<E: Clone, F: FnMut(&[E]) -> bool>(events: &[E], mut still_fails: F) -> Vec<E> {
    let mut current = events.to_vec();
    loop {
        let mut removed_any = false;
        // Sweep back-to-front so indices of not-yet-tried events stay valid.
        let mut i = current.len();
        while i > 0 {
            i -= 1;
            let mut candidate = current.clone();
            candidate.remove(i);
            if still_fails(&candidate) {
                current = candidate;
                removed_any = true;
            }
        }
        if !removed_any {
            return current;
        }
    }
}

/// Minimizes a scalar toward `min` while `still_fails` holds.
///
/// The companion to [`shrink_trace`] for the *quantitative* parts of a
/// counterexample (durations, op budgets, window lengths): first a
/// bisection toward `min`, then unit decrements, repeated until a full
/// pass makes no progress. Because the passes run to their own fixpoint,
/// re-shrinking the result is the identity (given a deterministic
/// predicate) — the property the fuzz fixtures pin.
///
/// `still_fails(current)` is assumed to hold on entry; the function never
/// probes values below `min` and returns a value on which `still_fails`
/// held (or `current.max(min)` untouched if nothing smaller failed).
pub fn shrink_scalar<F: FnMut(u64) -> bool>(current: u64, min: u64, mut still_fails: F) -> u64 {
    let mut cur = current.max(min);
    loop {
        let mut next = cur;
        // Bisect toward the floor while the failure persists…
        loop {
            let mid = min + (next - min) / 2;
            if mid == next || !still_fails(mid) {
                break;
            }
            next = mid;
        }
        // …then creep down by units to the exact boundary.
        while next > min && still_fails(next - 1) {
            next -= 1;
        }
        if next == cur {
            return cur;
        }
        cur = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failing_core() {
        // "Fails" whenever both 3 and 7 are present.
        let events = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let shrunk = shrink_trace(&events, |t| t.contains(&3) && t.contains(&7));
        assert_eq!(shrunk, vec![3, 7]);
    }

    #[test]
    fn multi_pass_removals() {
        // "Fails" when the sum is >= 10 — greedy single removals need
        // several sweeps to reach a minimal set.
        let events = vec![9, 1, 1, 1];
        let shrunk = shrink_trace(&events, |t| t.iter().sum::<i32>() >= 10);
        assert!(shrunk.iter().sum::<i32>() >= 10);
        for i in 0..shrunk.len() {
            let mut c = shrunk.clone();
            c.remove(i);
            assert!(c.iter().sum::<i32>() < 10, "not 1-minimal: {shrunk:?}");
        }
    }

    #[test]
    fn keeps_everything_when_all_needed() {
        let events = vec![1, 2];
        let shrunk = shrink_trace(&events, |t| t.len() == 2);
        assert_eq!(shrunk, vec![1, 2]);
    }

    #[test]
    fn scalar_shrink_finds_the_boundary() {
        // Fails for any value >= 37: must land exactly on 37.
        assert_eq!(shrink_scalar(1000, 0, |v| v >= 37), 37);
        // Floor respected even when everything fails.
        assert_eq!(shrink_scalar(1000, 5, |_| true), 5);
        // Nothing smaller fails: untouched.
        assert_eq!(shrink_scalar(12, 0, |v| v >= 12), 12);
    }

    #[test]
    fn scalar_shrink_is_a_fixpoint() {
        let pred = |v: u64| v >= 37 || (v % 10 == 3);
        let once = shrink_scalar(1000, 0, pred);
        let twice = shrink_scalar(once, 0, pred);
        assert_eq!(once, twice, "re-shrinking must be the identity");
    }
}
