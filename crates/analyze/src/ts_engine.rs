//! Bounded-exhaustive timestamp-discipline checking for object
//! compositions (Section 5, Figures 10/11).
//!
//! The composition of several objects keeps either one Lamport generator
//! per object (`⊗`, [`TsMode::PerObject`]) or a single generator spanning
//! all of them (`⊗ts`, [`TsMode::Shared`]). The engine explores every
//! configuration of a two-object, two-replica [`MultiCluster`] of LWW
//! registers within `k` writes and discharges the discipline each mode
//! actually promises:
//!
//! * **`ts-shared-discipline`** — under `⊗ts`, every generated timestamp
//!   strictly exceeds the timestamp of *every* visible operation, whatever
//!   its object, and timestamps are globally unique (the premise of
//!   Theorem 5.2);
//! * **`ts-per-object-discipline`** — under `⊗`, the same holds restricted
//!   to same-object visibility, with per-object uniqueness (all Figure 7
//!   guarantees);
//! * **`cross-object-inversion`** — a *reachability* obligation: under `⊗`
//!   the search must find a configuration where an operation's timestamp
//!   does **not** exceed a visible other-object timestamp — the Figure 10
//!   anomaly that makes `⊗` weaker than `⊗ts` and breaks compositionality
//!   for timestamp-ordered types. Failing to reach it would mean the
//!   per-object mode silently degenerated into the shared one.

use crate::outcome::{Obligation, Sink, TypeReport, Violation};
use crate::shrink::shrink_trace;
use ral_core::ids::{ObjId, ReplicaId};
use ral_crdts::op::lww_register::{LwwRegister, RegCall};
use ral_runtime::multi::{MultiCluster, TsMode};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::{self, Write as _};

/// Obligation key: global freshness + uniqueness under `⊗ts`.
pub const OB_SHARED: &str = "ts-shared-discipline";
/// Obligation key: per-object freshness + uniqueness under `⊗`.
pub const OB_PER_OBJECT: &str = "ts-per-object-discipline";
/// Obligation key: the Figure 10 anomaly is reachable under `⊗`.
pub const OB_INVERSION: &str = "cross-object-inversion";

/// Number of composed objects in the explored cluster.
const N_OBJECTS: usize = 2;
/// Number of replicas in the explored cluster.
const N_REPLICAS: usize = 2;

/// One event of a composed execution trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TsEvent {
    /// Write `value` to object `obj` at `replica`.
    Invoke {
        /// Stable invocation id.
        id: usize,
        /// Origin replica.
        replica: u32,
        /// Target object.
        obj: u32,
        /// Written value.
        value: u8,
    },
    /// Apply the effector of invocation `of` at `replica`.
    Deliver {
        /// Receiving replica.
        replica: u32,
        /// The `id` of the [`TsEvent::Invoke`] whose effector is applied.
        of: usize,
    },
}

impl fmt::Display for TsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsEvent::Invoke {
                id,
                replica,
                obj,
                value,
            } => write!(f, "invoke#{id} at r{replica}: o{obj}.Write({value})"),
            TsEvent::Deliver { replica, of } => write!(f, "deliver invoke#{of} at r{replica}"),
        }
    }
}

/// Renders a trace as the replayable fixture format.
pub fn render_ts_trace(mode: TsMode, events: &[TsEvent]) -> String {
    let mut out =
        format!("composed cluster: {N_OBJECTS} objects, {N_REPLICAS} replicas, {mode:?}\n");
    for ev in events {
        let _ = writeln!(out, "{ev}");
    }
    out
}

/// Explores both composition modes at scope `k`; returns one report per
/// mode (`LwwRegister ⊗` and `LwwRegister ⊗ts`).
pub fn analyze_ts(k: usize) -> Vec<TypeReport> {
    vec![
        analyze_mode(TsMode::PerObject, k),
        analyze_mode(TsMode::Shared, k),
    ]
}

struct Node {
    cluster: MultiCluster<LwwRegister<u8>>,
    trace: Vec<TsEvent>,
    updates: usize,
}

fn analyze_mode(mode: TsMode, k: usize) -> TypeReport {
    let kind = match mode {
        TsMode::PerObject => OB_PER_OBJECT,
        TsMode::Shared => OB_SHARED,
    };
    let mut sink = Sink::new();
    sink.touch(kind);
    let mut seen_configs = BTreeSet::new();
    let root = Node {
        cluster: MultiCluster::new(LwwRegister::new(), N_OBJECTS, N_REPLICAS, mode),
        trace: Vec::new(),
        updates: 0,
    };
    seen_configs.insert(crate::fnv1a(config_key(&root.cluster, 0).as_bytes()));
    let mut stack = vec![root];
    let mut configs = 0usize;
    let mut witness: Option<Vec<TsEvent>> = None;
    let mut inversion: Option<Vec<TsEvent>> = None;

    while let Some(node) = stack.pop() {
        configs += 1;
        check_config(&node.cluster, mode, &mut sink);
        if sink.violation().is_some() {
            witness = Some(node.trace);
            break;
        }
        if inversion.is_none() && has_inversion(&node.cluster) {
            inversion = Some(node.trace.clone());
        }
        if node.updates < k {
            for r in 0..N_REPLICAS {
                for obj in 0..N_OBJECTS {
                    let value = 10 + node.updates as u8;
                    let mut next = node.cluster.clone();
                    if next
                        .invoke(
                            ReplicaId(r as u32),
                            ObjId(obj as u32),
                            RegCall::Write(value),
                        )
                        .is_none()
                    {
                        continue;
                    }
                    let key = crate::fnv1a(config_key(&next, node.updates + 1).as_bytes());
                    if seen_configs.insert(key) {
                        let mut trace = node.trace.clone();
                        trace.push(TsEvent::Invoke {
                            id: node.updates,
                            replica: r as u32,
                            obj: obj as u32,
                            value,
                        });
                        stack.push(Node {
                            cluster: next,
                            trace,
                            updates: node.updates + 1,
                        });
                    }
                }
            }
        }
        for r in 0..N_REPLICAS {
            for d in node.cluster.deliverable(ReplicaId(r as u32)) {
                let mut next = node.cluster.clone();
                next.deliver(ReplicaId(r as u32), d);
                let key = crate::fnv1a(config_key(&next, node.updates).as_bytes());
                if seen_configs.insert(key) {
                    let mut trace = node.trace.clone();
                    trace.push(TsEvent::Deliver {
                        replica: r as u32,
                        of: d,
                    });
                    stack.push(Node {
                        cluster: next,
                        trace,
                        updates: node.updates,
                    });
                }
            }
        }
    }

    let violation = witness.map(|trace| {
        let shrunk = shrink_trace(&trace, |candidate| {
            replay_ts(mode, candidate).1.violated(kind)
        });
        let detail = replay_ts(mode, &shrunk)
            .1
            .violation()
            .map(|(_, d)| d.to_string())
            .unwrap_or_default();
        let ops = shrunk
            .iter()
            .filter(|e| matches!(e, TsEvent::Invoke { .. }))
            .count();
        Violation {
            detail,
            trace: render_ts_trace(mode, &shrunk),
            ops,
        }
    });
    let mut obligations = sink.into_obligations(violation);
    if mode == TsMode::PerObject {
        // Reachability obligation: discharged iff the anomaly was found.
        // The reachability *refutation* carries no trace — there is nothing
        // to replay when the whole bounded space lacks the configuration.
        let violation = if inversion.is_some() {
            None
        } else {
            Some(Violation {
                detail: "no cross-object timestamp inversion reachable under ⊗ — \
                         the per-object mode degenerated into the shared one"
                    .to_string(),
                trace: String::new(),
                ops: 0,
            })
        };
        obligations.push(Obligation {
            name: OB_INVERSION.to_string(),
            checks: configs as u64,
            violation,
        });
    }
    TypeReport {
        name: match mode {
            TsMode::PerObject => "LwwRegister ⊗ (per-object ts)".to_string(),
            TsMode::Shared => "LwwRegister ⊗ts (shared ts)".to_string(),
        },
        style: "composed",
        scope: k,
        configs,
        obligations,
    }
}

/// Replays a trace with skip-inapplicable semantics, running the discipline
/// checks after every event.
pub(crate) fn replay_ts(mode: TsMode, events: &[TsEvent]) -> (MultiCluster<LwwRegister<u8>>, Sink) {
    let mut cluster = MultiCluster::new(LwwRegister::new(), N_OBJECTS, N_REPLICAS, mode);
    let mut sink = Sink::new();
    let mut delivery_of: BTreeMap<usize, usize> = BTreeMap::new();
    check_config(&cluster, mode, &mut sink);
    for ev in events {
        match ev {
            TsEvent::Invoke {
                id,
                replica,
                obj,
                value,
            } => {
                let d = cluster.n_deliveries();
                if cluster
                    .invoke(ReplicaId(*replica), ObjId(*obj), RegCall::Write(*value))
                    .is_some()
                {
                    delivery_of.insert(*id, d);
                }
            }
            TsEvent::Deliver { replica, of } => {
                if let Some(&d) = delivery_of.get(of) {
                    if cluster.can_deliver(ReplicaId(*replica), d) {
                        cluster.deliver(ReplicaId(*replica), d);
                    }
                }
            }
        }
        check_config(&cluster, mode, &mut sink);
    }
    (cluster, sink)
}

/// The discipline each mode promises, checked over the composed history.
fn check_config(cluster: &MultiCluster<LwwRegister<u8>>, mode: TsMode, sink: &mut Sink) {
    let h = cluster.history();
    let kind = match mode {
        TsMode::PerObject => OB_PER_OBJECT,
        TsMode::Shared => OB_SHARED,
    };
    for i in 0..h.len() {
        let Some(ts) = h.op(i).ts else { continue };
        let obj = h.label(i).obj;
        for p in h.preds(i).iter() {
            let same_obj = h.label(p).obj == obj;
            if mode == TsMode::Shared || same_obj {
                sink.check(kind, Some(ts) > h.op(p).ts, || {
                    format!(
                        "op {i} (object {obj}) generated ts {ts} not above visible \
                         op {p} (object {}, ts {:?})",
                        h.label(p).obj,
                        h.op(p).ts
                    )
                });
            }
        }
        for j in 0..i {
            let unique_scope = mode == TsMode::Shared || h.label(j).obj == obj;
            if unique_scope && h.op(j).ts == Some(ts) {
                sink.check(kind, false, || {
                    format!("ops {j} and {i} share timestamp {ts}")
                });
            }
        }
    }
}

/// A canonical rendering of a composed configuration: per-replica object
/// states, delivery status bits, and the history (labels, origins,
/// timestamps, visibility).
fn config_key(cluster: &MultiCluster<LwwRegister<u8>>, updates: usize) -> String {
    let mut s = format!("u{updates};");
    for r in 0..N_REPLICAS {
        for obj in 0..N_OBJECTS {
            let _ = write!(
                s,
                "R{r}o{obj}{:?};",
                cluster.state(ReplicaId(r as u32), ObjId(obj as u32))
            );
        }
    }
    for d in 0..cluster.n_deliveries() {
        let bits: Vec<bool> = (0..N_REPLICAS)
            .map(|r| cluster.is_delivered(d, ReplicaId(r as u32)))
            .collect();
        let _ = write!(s, "D{}|{bits:?};", cluster.delivery_op(d));
    }
    let h = cluster.history();
    for i in 0..h.len() {
        let _ = write!(
            s,
            "H{:?}|{:?}|{:?}|{:?};",
            h.label(i),
            h.op(i).replica,
            h.op(i).ts,
            h.preds(i).iter().collect::<Vec<_>>()
        );
    }
    s
}

/// Whether the composed history exhibits the Figure 10 anomaly: an
/// operation whose timestamp does not exceed a *visible* other-object
/// timestamp.
fn has_inversion(cluster: &MultiCluster<LwwRegister<u8>>) -> bool {
    let h = cluster.history();
    (0..h.len()).any(|i| {
        let Some(ts) = h.op(i).ts else { return false };
        h.preds(i)
            .iter()
            .any(|p| h.label(p).obj != h.label(i).obj && h.op(p).ts >= Some(ts))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_discharge_their_discipline() {
        for report in analyze_ts(3) {
            assert!(report.discharged(), "{report}");
        }
    }

    #[test]
    fn per_object_mode_reaches_the_inversion() {
        let reports = analyze_ts(2);
        let per_obj = &reports[0];
        let row = per_obj
            .obligations
            .iter()
            .find(|o| o.name == OB_INVERSION)
            .expect("inversion obligation present");
        assert!(row.violation.is_none(), "inversion must be reachable");
    }

    #[test]
    fn shared_mode_has_no_inversion_row() {
        let reports = analyze_ts(2);
        assert!(reports[1]
            .obligations
            .iter()
            .all(|o| o.name != OB_INVERSION));
    }
}
