#![warn(missing_docs)]
//! `ral-analyze` — the workspace's static-analysis gate.
//!
//! Two engines behind one CLI ([`main`](../ral_analyze/index.html)) and one
//! CI step:
//!
//! * **Obligation analyzer** ([`op_engine`], [`state_engine`],
//!   [`ts_engine`]) — bounded-exhaustive discharge of the paper's
//!   replication-aware simulation obligations. Where
//!   `ral_verify::state_props` / `commutativity` *sample* the obligations on
//!   seeded random executions, the analyzer enumerates **every** cluster
//!   configuration reachable within a scope bound `k` (every
//!   [`SmallScope`](ral_core::scope::SmallScope) generator call, origin
//!   replica, and message interleaving) and checks each obligation on each
//!   configuration: Prop1/Prop1′ effector commutativity, Prop2/Prop3
//!   merge-effector exchange, Prop4 merge ACI + idempotence + monotonicity
//!   w.r.t. `leq`, Prop5 origin replay, Prop6 idempotent re-application,
//!   the delta laws, and timestamp-discipline conformance for both
//!   composition modes `⊗` / `⊗ts`. A violation is shrunk
//!   delta-debugging-style ([`shrink`]) to a 1-minimal event trace and
//!   printed as a replayable fixture.
//! * **Determinism lint** ([`lint`]) — a hand-rolled Rust lexer (no `syn`)
//!   that walks the workspace sources and fails on nondeterminism hazards:
//!   hash-ordered collections in trace-affecting crates, wall-clock reads
//!   outside `crates/bench`, environment reads outside `ral_core::env`, and
//!   thread-identity reads anywhere. Audited exceptions live in an
//!   allowlist file with mandatory justifications.
//!
//! [`registry`] runs the obligation engines over every shipped CRDT and the
//! deliberately broken [`fixtures`]; [`report`] serializes everything to
//! `ANALYZE_report.json` for the CI artifact.

pub mod fixtures;
pub mod lint;
pub mod op_engine;
pub mod outcome;
pub mod registry;
pub mod report;
pub mod shrink;
pub mod state_engine;
pub mod ts_engine;

pub use outcome::{Obligation, TypeReport, Violation};

/// FNV-1a 64-bit hash, used to dedup explored configurations without
/// retaining their full rendered keys.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
