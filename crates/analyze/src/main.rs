//! `ral-analyze` — the CI gate binary.
//!
//! Runs both engines and fails (exit 1) unless:
//!
//! * every obligation of every shipped CRDT is **discharged** at the scope
//!   bound,
//! * both negative fixtures are **refuted** with a shrunk counterexample,
//! * the workspace determinism lint is **clean** (modulo the audited
//!   allowlist).
//!
//! ```text
//! cargo run --release -p ral-analyze             # full gate, scope 3
//! cargo run -p ral-analyze -- --quick            # scope 2 (debug-friendly)
//! cargo run -p ral-analyze -- --scope 4          # deeper search
//! cargo run -p ral-analyze -- --report out.json  # explicit artifact path
//! ```
//!
//! The machine-readable artifact defaults to `ANALYZE_report.json` in the
//! workspace root; CI uploads it.

use ral_analyze::lint::lint_workspace;
use ral_analyze::registry::{analyze_fixtures, analyze_shipped};
use ral_analyze::report::render_report;
use ral_analyze::TypeReport;
use ral_verify::obligations::{render_obligation_table, ObligationRow, Verdict};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Default scope bound (max update operations per explored execution).
const DEFAULT_SCOPE: usize = 3;
/// Scope bound under `--quick`.
const QUICK_SCOPE: usize = 2;

fn usage() -> &'static str {
    "usage: ral-analyze [--quick] [--scope N] [--report PATH] [--no-report]\n\
     \n\
     Bounded-exhaustive simulation-obligation checking plus the workspace\n\
     determinism lint. Exits non-zero on any undischarged obligation, any\n\
     unrefuted negative fixture, or any lint hit.\n\
     \n\
       --quick        scope 2 instead of 3 (fast debug-build runs)\n\
       --scope N      explicit scope bound (overrides --quick)\n\
       --report PATH  where to write ANALYZE_report.json\n\
       --no-report    skip writing the JSON artifact\n"
}

struct Options {
    scope: usize,
    report_path: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut scope = None;
    let mut quick = false;
    let mut report_path = None;
    let mut no_report = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--scope" => {
                let v = args.next().ok_or("--scope needs a value")?;
                scope = Some(v.parse::<usize>().map_err(|e| format!("--scope: {e}"))?);
            }
            "--report" => {
                report_path = Some(PathBuf::from(args.next().ok_or("--report needs a path")?));
            }
            "--no-report" => no_report = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    let scope = scope.unwrap_or(if quick { QUICK_SCOPE } else { DEFAULT_SCOPE });
    if scope == 0 {
        return Err("--scope must be at least 1".to_string());
    }
    let report_path = if no_report {
        None
    } else {
        Some(report_path.unwrap_or_else(|| workspace_root().join("ANALYZE_report.json")))
    };
    Ok(Options { scope, report_path })
}

/// The workspace root, resolved from this crate's manifest directory so the
/// binary works from any CWD.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

fn rows_of(reports: &[TypeReport], expected_refuted: bool) -> Vec<ObligationRow> {
    let mut rows = Vec::new();
    for r in reports {
        for ob in &r.obligations {
            rows.push(ObligationRow {
                type_name: r.name.clone(),
                style: r.style.to_string(),
                obligation: ob.name.clone(),
                scope: r.scope,
                checks: ob.checks,
                verdict: match (&ob.violation, expected_refuted) {
                    (None, _) => Verdict::Discharged,
                    (Some(_), true) => Verdict::RefutedExpected,
                    (Some(_), false) => Verdict::Refuted,
                },
            });
        }
    }
    rows
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    println!(
        "== engine 1: simulation obligations (scope {}) ==",
        opts.scope
    );
    let shipped = analyze_shipped(opts.scope);
    let fixtures = analyze_fixtures(opts.scope);
    let mut rows = rows_of(&shipped, false);
    rows.extend(rows_of(&fixtures, true));
    println!("{}", render_obligation_table(&rows));

    let mut failed = false;
    for r in &shipped {
        if let Some((kind, v)) = r.violation() {
            failed = true;
            println!("UNDISCHARGED: {} / {kind}", r.name);
            println!("  {}", v.detail);
            if !v.trace.is_empty() {
                println!("  minimal counterexample ({} ops):", v.ops);
                for line in v.trace.lines() {
                    println!("    {line}");
                }
            }
        }
    }
    for r in &fixtures {
        match r.violation() {
            Some((kind, v)) => {
                println!(
                    "negative control OK: {} refuted ({kind}, {} ops after shrinking)",
                    r.name, v.ops
                );
            }
            None => {
                failed = true;
                println!(
                    "NEGATIVE CONTROL FAILED: {} was not refuted — the analyzer lost a rule",
                    r.name
                );
            }
        }
    }

    println!("\n== engine 2: determinism lint ==");
    let root = workspace_root();
    let lint = match lint_workspace(&root) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: lint scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "scanned {} files, {} allowlisted occurrence(s)",
        lint.files_scanned, lint.allowed
    );
    for hit in &lint.hits {
        failed = true;
        println!("LINT: {hit}");
    }
    for stale in &lint.stale_allow {
        println!("warning: stale allowlist entry: {stale}");
    }
    if lint.clean() {
        println!("lint clean");
    }

    if let Some(path) = &opts.report_path {
        let json = render_report(opts.scope, &shipped, &fixtures, &lint);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("\nreport written to {}", path.display());
    }

    if failed {
        println!("\nanalyze gate: FAILED");
        ExitCode::FAILURE
    } else {
        println!("\nanalyze gate: green");
        ExitCode::SUCCESS
    }
}
