//! Hand-rolled JSON helpers: the string escaper the exporters share and a
//! strict syntax validator.
//!
//! The workspace carries no serde; exporters build their output with
//! `write!` like `ral-analyze`'s report does. The validator exists so the
//! observability example and the CI step can prove "the emitted trace
//! parses" without shelling out to an external tool.

use std::fmt::Write as _;

/// Escapes `s` as a JSON string literal (including the quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validates that `s` is one well-formed JSON value (with nothing but
/// whitespace after it).
///
/// # Errors
///
/// Returns a byte offset and message for the first syntax error.
pub fn validate(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaper_handles_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn validator_accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            " true ",
            "-12.5e+3",
            r#"{"a": [1, 2, {"b": "c\nd"}], "e": null}"#,
            r#""\u00e9""#,
        ] {
            assert_eq!(validate(ok), Ok(()), "{ok}");
        }
    }

    #[test]
    fn validator_rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "01x",
            "\"unterminated",
            "{} extra",
            "1.",
            "troo",
        ] {
            assert!(validate(bad).is_err(), "{bad} should be rejected");
        }
    }
}
