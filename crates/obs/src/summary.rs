//! Aggregation of a drained [`Snapshot`] and the human-readable summary
//! table — the `ral_verify::obligations` aligned-text style, one section
//! each for counters, histograms, and spans.

use crate::perfetto::key_label;
use crate::recorder::{Clock, EventKind, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of power-of-two histogram buckets: bucket 0 holds value 0,
/// bucket `i ≥ 1` holds values `v` with `ilog2(v) == i - 1`.
pub const BUCKETS: usize = 65;

/// A fixed-bucket histogram with exact percentiles (computed from the raw
/// samples at aggregation time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Sample count.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Power-of-two bucket counts; see [`BUCKETS`].
    pub buckets: [u64; BUCKETS],
}

impl Histogram {
    /// Aggregates raw samples.
    pub fn from_values(mut values: Vec<u64>) -> Histogram {
        values.sort_unstable();
        let mut buckets = [0u64; BUCKETS];
        for &v in &values {
            let idx = if v == 0 { 0 } else { v.ilog2() as usize + 1 };
            buckets[idx] += 1;
        }
        let pct = |p: usize| -> u64 {
            if values.is_empty() {
                0
            } else {
                values[(values.len() - 1) * p / 100]
            }
        };
        Histogram {
            count: values.len() as u64,
            sum: values.iter().sum(),
            min: values.first().copied().unwrap_or(0),
            max: values.last().copied().unwrap_or(0),
            p50: pct(50),
            p90: pct(90),
            p99: pct(99),
            buckets,
        }
    }
}

/// One counter series: a name, an optional key label, and the total.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterRow {
    /// Counter name.
    pub name: &'static str,
    /// Rendered key ([`key_label`]); `None` for unkeyed counters.
    pub key: Option<String>,
    /// Sum of deltas.
    pub total: u64,
}

/// One span name's totals across the snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRow {
    /// Span name.
    pub name: &'static str,
    /// Number of times the span was opened.
    pub count: u64,
    /// Total duration of virtual-stamped openings, in sim ticks.
    pub virtual_ticks: u64,
    /// Total duration of wall-stamped openings, in nanoseconds.
    pub wall_nanos: u64,
}

/// Everything the summary table and the JSON report present, computed
/// once from a snapshot.
#[derive(Clone, Debug, Default)]
pub struct Aggregate {
    /// Counter series, ascending by `(name, key)`.
    pub counters: Vec<CounterRow>,
    /// Histograms, ascending by name.
    pub histograms: Vec<(&'static str, Histogram)>,
    /// Span totals, ascending by name.
    pub spans: Vec<SpanRow>,
    /// Total events in the snapshot.
    pub events: usize,
    /// Events lost to the capacity bound.
    pub dropped: u64,
}

/// Aggregates a snapshot: counter totals per `(name, key)`, histograms
/// per value name, and span counts/durations per span name (begin/end
/// pairs matched per lane, assuming well-nested spans; unclosed spans
/// count but contribute no duration).
pub fn aggregate(snap: &Snapshot) -> Aggregate {
    let mut counters: BTreeMap<(&'static str, u64), u64> = BTreeMap::new();
    let mut values: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    let mut spans: BTreeMap<&'static str, SpanRow> = BTreeMap::new();
    // Per-lane stack of open spans for duration matching.
    let mut open: BTreeMap<u32, Vec<(&'static str, Clock, u64)>> = BTreeMap::new();
    for e in &snap.events {
        match &e.kind {
            EventKind::Counter { name, key, delta } => {
                *counters.entry((name, *key)).or_insert(0) += *delta;
            }
            EventKind::Value { name, value } => {
                values.entry(name).or_default().push(*value);
            }
            EventKind::Begin(name) => {
                spans
                    .entry(name)
                    .or_insert(SpanRow {
                        name,
                        count: 0,
                        virtual_ticks: 0,
                        wall_nanos: 0,
                    })
                    .count += 1;
                open.entry(e.lane).or_default().push((name, e.clock, e.ts));
            }
            EventKind::End(name) => {
                let stack = open.entry(e.lane).or_default();
                if let Some(pos) = stack.iter().rposition(|(n, _, _)| n == name) {
                    let (_, clock, start) = stack.remove(pos);
                    if clock == e.clock {
                        let d = e.ts.saturating_sub(start);
                        let row = spans.get_mut(name).expect("span row exists");
                        match clock {
                            Clock::Virtual => row.virtual_ticks += d,
                            Clock::Wall => row.wall_nanos += d,
                        }
                    }
                }
            }
            EventKind::Point { .. } => {}
        }
    }
    Aggregate {
        counters: counters
            .into_iter()
            .map(|((name, key), total)| CounterRow {
                name,
                key: key_label(name, key),
                total,
            })
            .collect(),
        histograms: values
            .into_iter()
            .map(|(name, v)| (name, Histogram::from_values(v)))
            .collect(),
        spans: spans.into_values().collect(),
        events: snap.events.len(),
        dropped: snap.dropped,
    }
}

/// Renders rows as an aligned text table (headers, dash rule, trailing
/// spaces trimmed).
fn aligned_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let write_row = |out: &mut String, cols: &[&str]| {
        for (i, (col, w)) in cols.iter().zip(&widths).enumerate() {
            let pad = w - col.chars().count();
            let _ = write!(
                out,
                "{}{}{}",
                if i > 0 { "  " } else { "" },
                col,
                " ".repeat(pad)
            );
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    write_row(&mut out, headers);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    write_row(
        &mut out,
        &rule.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    for row in rows {
        write_row(
            &mut out,
            &row.iter().map(String::as_str).collect::<Vec<_>>(),
        );
    }
    out
}

/// Renders the three-section human-readable summary of a snapshot.
pub fn render_summary(snap: &Snapshot) -> String {
    let agg = aggregate(snap);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Observability summary: {} events ({} dropped at capacity)",
        agg.events, agg.dropped
    );
    out.push('\n');
    out.push_str("Counters\n");
    let counter_rows: Vec<Vec<String>> = agg
        .counters
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                c.key.clone().unwrap_or_else(|| "-".to_string()),
                c.total.to_string(),
            ]
        })
        .collect();
    out.push_str(&aligned_table(&["Name", "Key", "Total"], &counter_rows));
    out.push('\n');
    out.push_str("Histograms\n");
    let hist_rows: Vec<Vec<String>> = agg
        .histograms
        .iter()
        .map(|(name, h)| {
            vec![
                name.to_string(),
                h.count.to_string(),
                h.min.to_string(),
                h.p50.to_string(),
                h.p90.to_string(),
                h.p99.to_string(),
                h.max.to_string(),
            ]
        })
        .collect();
    out.push_str(&aligned_table(
        &["Name", "Count", "Min", "P50", "P90", "P99", "Max"],
        &hist_rows,
    ));
    out.push('\n');
    out.push_str("Spans\n");
    let span_rows: Vec<Vec<String>> = agg
        .spans
        .iter()
        .map(|s| {
            vec![
                s.name.to_string(),
                s.count.to_string(),
                s.virtual_ticks.to_string(),
                (s.wall_nanos / 1000).to_string(),
            ]
        })
        .collect();
    out.push_str(&aligned_table(
        &["Name", "Count", "Virtual(ticks)", "Wall(us)"],
        &span_rows,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{link_key, ObsEvent, NO_KEY};

    fn ev(lane: u32, clock: Clock, ts: u64, kind: EventKind) -> ObsEvent {
        ObsEvent {
            lane,
            clock,
            ts,
            kind,
        }
    }

    fn sample() -> Snapshot {
        Snapshot {
            events: vec![
                ev(0, Clock::Virtual, 10, EventKind::Begin("sim.event.invoke")),
                ev(
                    0,
                    Clock::Virtual,
                    10,
                    EventKind::Counter {
                        name: "sim.link.bytes",
                        key: link_key(0, 1),
                        delta: 16,
                    },
                ),
                ev(
                    0,
                    Clock::Virtual,
                    10,
                    EventKind::Counter {
                        name: "sim.invokes",
                        key: NO_KEY,
                        delta: 1,
                    },
                ),
                ev(0, Clock::Virtual, 14, EventKind::End("sim.event.invoke")),
                ev(
                    0,
                    Clock::Virtual,
                    14,
                    EventKind::Value {
                        name: "sim.link.delay",
                        value: 4,
                    },
                ),
                ev(
                    0,
                    Clock::Virtual,
                    15,
                    EventKind::Value {
                        name: "sim.link.delay",
                        value: 9,
                    },
                ),
                ev(1, Clock::Wall, 1000, EventKind::Begin("ralin.search")),
                ev(1, Clock::Wall, 4500, EventKind::End("ralin.search")),
            ],
            dropped: 2,
        }
    }

    #[test]
    fn aggregate_totals_durations_and_percentiles() {
        let agg = aggregate(&sample());
        assert_eq!(agg.events, 8);
        assert_eq!(agg.dropped, 2);
        let bytes = agg
            .counters
            .iter()
            .find(|c| c.name == "sim.link.bytes")
            .unwrap();
        assert_eq!(bytes.key.as_deref(), Some("0->1"));
        assert_eq!(bytes.total, 16);
        let (name, h) = &agg.histograms[0];
        assert_eq!(*name, "sim.link.delay");
        assert_eq!((h.count, h.min, h.max, h.sum), (2, 4, 9, 13));
        // Bucket 3 holds [4,8), bucket 4 holds [8,16).
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[4], 1);
        let sim = agg
            .spans
            .iter()
            .find(|s| s.name == "sim.event.invoke")
            .unwrap();
        assert_eq!((sim.count, sim.virtual_ticks, sim.wall_nanos), (1, 4, 0));
        let search = agg.spans.iter().find(|s| s.name == "ralin.search").unwrap();
        assert_eq!(
            (search.count, search.virtual_ticks, search.wall_nanos),
            (1, 0, 3500)
        );
    }

    #[test]
    fn summary_table_aligns_and_lists_all_sections() {
        let text = render_summary(&sample());
        assert!(text.contains("8 events (2 dropped at capacity)"));
        for section in ["Counters", "Histograms", "Spans"] {
            assert!(text.contains(section), "missing section {section}");
        }
        assert!(text.contains("sim.link.bytes"));
        assert!(text.contains("0->1"));
        // Unkeyed counters show a dash.
        let line = text.lines().find(|l| l.starts_with("sim.invokes")).unwrap();
        assert!(line.contains('-'));
    }

    #[test]
    fn histogram_of_empty_and_zero_values() {
        let h = Histogram::from_values(vec![]);
        assert_eq!((h.count, h.min, h.max, h.p50), (0, 0, 0, 0));
        let h = Histogram::from_values(vec![0, 0, 1]);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
    }
}
