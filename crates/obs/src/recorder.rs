//! The recording core: a global on/off switch, per-thread event lanes
//! behind a global sink, and the span/counter/histogram entry points.
//!
//! # Cost model
//!
//! Every entry point starts with one relaxed [`AtomicBool`] load and
//! returns immediately when recording is off — no timestamp is taken, no
//! thread-local is touched, nothing allocates. Instrumentation sites can
//! therefore stay in place permanently; the determinism suites further pin
//! that toggling recording never changes a sim trace or checker verdict
//! (observability is *inert* — it observes state, it never feeds back).
//!
//! # Lanes
//!
//! When recording is on, each thread appends to its own *lane* — a buffer
//! registered in a global registry on first use, surviving thread exit so
//! scoped worker threads (the checker pool) keep their events. Lane ids
//! are assigned in registration order, never from OS thread identity
//! (which the workspace determinism lint bans). A lane stops recording
//! (and counts drops instead) once it holds [`capacity`] events.
//!
//! # Clock domains
//!
//! Timestamps come from one of two domains, tagged on every event: the
//! **virtual** domain — sim ticks, installed per thread via
//! [`enter_virtual_clock`] / [`set_virtual_now`] — and the **wall**
//! domain, read through the one allowlisted [`crate::wallclock`] module.
//! Inside a simulation every event is virtual-stamped and therefore fully
//! deterministic; checker events outside a sim fall back to wall time.

use crate::wallclock;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Default per-lane event capacity (events beyond it are counted, not
/// stored). Override per run with [`enable`] / `RAL_OBS_CAPACITY`.
pub const DEFAULT_CAPACITY: usize = 1 << 21;

/// Sentinel key for events recorded without a dimension ([`counter`],
/// [`instant`]). Distinct from key `0`, which is a legitimate replica,
/// window, or link value.
pub const NO_KEY: u64 = u64::MAX;

/// Which clock domain stamped an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Clock {
    /// Sim ticks from the virtual clock installed by
    /// [`enter_virtual_clock`]; deterministic for a fixed seed.
    Virtual,
    /// Nanoseconds since an arbitrary process-local anchor, read through
    /// [`crate::wallclock`].
    Wall,
}

/// What one recorded event says.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened ([`span`]).
    Begin(&'static str),
    /// A span closed (the guard dropped).
    End(&'static str),
    /// A point event, with an optional dimension key ([`NO_KEY`] if none).
    Point {
        /// Event name.
        name: &'static str,
        /// Dimension key (replica, partition window, [`link_key`], …).
        key: u64,
    },
    /// A monotone counter increment, with an optional dimension key.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Dimension key ([`NO_KEY`] for the plain aggregate).
        key: u64,
        /// Amount added.
        delta: u64,
    },
    /// One histogram sample ([`observe`]).
    Value {
        /// Histogram name.
        name: &'static str,
        /// The sampled value.
        value: u64,
    },
}

impl EventKind {
    /// The event's name, whatever its kind.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Begin(n) | EventKind::End(n) => n,
            EventKind::Point { name, .. }
            | EventKind::Counter { name, .. }
            | EventKind::Value { name, .. } => name,
        }
    }
}

/// One recorded event: which lane produced it, when, and what it says.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsEvent {
    /// Registration-order id of the producing lane.
    pub lane: u32,
    /// Clock domain of `ts`.
    pub clock: Clock,
    /// Timestamp: sim ticks (virtual) or anchor-relative nanoseconds
    /// (wall).
    pub ts: u64,
    /// The payload.
    pub kind: EventKind,
}

struct LaneBuf {
    events: Vec<ObsEvent>,
    dropped: u64,
}

struct Lane {
    id: u32,
    buf: Mutex<LaneBuf>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);
/// Bumped by [`reset`] so threads drop their cached lane handle.
static GENERATION: AtomicU64 = AtomicU64::new(0);
static REGISTRY: Mutex<Vec<Arc<Lane>>> = Mutex::new(Vec::new());

thread_local! {
    /// `(generation, lane)` cache; re-registered after a [`reset`].
    static LANE: RefCell<Option<(u64, Arc<Lane>)>> = const { RefCell::new(None) };
    /// The installed virtual clock, if any.
    static VIRTUAL: Cell<Option<u64>> = const { Cell::new(None) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking recorder thread must not take observability down with
    // it: recover the data behind a poisoned lock.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether recording is currently on. One relaxed atomic load — this is
/// the fast path every instrumentation site takes when observability is
/// disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on, optionally overriding the per-lane event
/// [`capacity`] (values below 1 are clamped to 1). Does not clear
/// previously recorded events — pair with [`reset`] for a fresh run.
pub fn enable(capacity_override: Option<usize>) {
    if let Some(c) = capacity_override {
        CAPACITY.store(c.max(1), Ordering::Relaxed);
    }
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Buffered events stay available to [`drain`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// The current per-lane event capacity.
pub fn capacity() -> usize {
    CAPACITY.load(Ordering::Relaxed)
}

/// Discards every recorded event and all lane registrations. Threads
/// re-register (with fresh lane ids, again in first-record order) on
/// their next event.
pub fn reset() {
    let mut reg = lock(&REGISTRY);
    reg.clear();
    GENERATION.fetch_add(1, Ordering::Relaxed);
}

/// Takes every buffered event out of the sink: lanes in id order, each
/// lane's events in record order. Lane registrations survive, so ids stay
/// stable across repeated drains.
pub fn drain() -> Snapshot {
    let reg = lock(&REGISTRY);
    let mut events = Vec::new();
    let mut dropped = 0u64;
    for lane in reg.iter() {
        let mut buf = lock(&lane.buf);
        events.append(&mut buf.events);
        dropped += buf.dropped;
        buf.dropped = 0;
    }
    Snapshot { events, dropped }
}

fn record(kind: EventKind) {
    let (clock, ts) = match VIRTUAL.with(Cell::get) {
        Some(t) => (Clock::Virtual, t),
        None => (Clock::Wall, wallclock::now_nanos()),
    };
    let generation = GENERATION.load(Ordering::Relaxed);
    LANE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let lane = match slot.as_ref() {
            Some((g, lane)) if *g == generation => lane.clone(),
            _ => {
                let mut reg = lock(&REGISTRY);
                let lane = Arc::new(Lane {
                    id: reg.len() as u32,
                    buf: Mutex::new(LaneBuf {
                        events: Vec::new(),
                        dropped: 0,
                    }),
                });
                reg.push(lane.clone());
                *slot = Some((generation, lane.clone()));
                lane
            }
        };
        let mut buf = lock(&lane.buf);
        if buf.events.len() >= capacity() {
            buf.dropped += 1;
        } else {
            let lane_id = lane.id;
            buf.events.push(ObsEvent {
                lane: lane_id,
                clock,
                ts,
                kind,
            });
        }
    });
}

/// Adds `delta` to the aggregate counter `name`.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if enabled() {
        record(EventKind::Counter {
            name,
            key: NO_KEY,
            delta,
        });
    }
}

/// Adds `delta` to counter `name` under dimension `key` (e.g. a
/// [`link_key`]).
#[inline]
pub fn counter_keyed(name: &'static str, key: u64, delta: u64) {
    if enabled() {
        record(EventKind::Counter { name, key, delta });
    }
}

/// Records one histogram sample.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if enabled() {
        record(EventKind::Value { name, value });
    }
}

/// Records a point event with no dimension.
#[inline]
pub fn instant(name: &'static str) {
    if enabled() {
        record(EventKind::Point { name, key: NO_KEY });
    }
}

/// Records a point event under dimension `key` (replica id, partition
/// window, …).
#[inline]
pub fn instant_keyed(name: &'static str, key: u64) {
    if enabled() {
        record(EventKind::Point { name, key });
    }
}

/// An open span; dropping it records the matching end event. Disarmed
/// (fully free) when recording was off at [`span`] time.
#[must_use = "dropping the guard immediately makes a zero-length span"]
pub struct SpanGuard {
    name: Option<&'static str>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            if enabled() {
                record(EventKind::End(name));
            }
        }
    }
}

/// Opens a span: records a begin event now and an end event when the
/// returned guard drops. When recording is off this is a no-op returning
/// a disarmed guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if enabled() {
        record(EventKind::Begin(name));
        SpanGuard { name: Some(name) }
    } else {
        SpanGuard { name: None }
    }
}

/// Installs the virtual clock on this thread, starting at `ticks`;
/// restores the previous state (usually "no virtual clock") when the
/// guard drops. While installed, every event this thread records is
/// stamped [`Clock::Virtual`].
pub fn enter_virtual_clock(ticks: u64) -> VirtualClockScope {
    let prev = VIRTUAL.with(|c| c.replace(Some(ticks)));
    VirtualClockScope { prev }
}

/// Moves this thread's virtual clock to `ticks`. A no-op stamp-wise
/// outside an [`enter_virtual_clock`] scope is *not* provided: calling
/// this without a scope installs the clock until the thread ends, so
/// always pair it with a scope guard.
#[inline]
pub fn set_virtual_now(ticks: u64) {
    VIRTUAL.with(|c| c.set(Some(ticks)));
}

/// Guard restoring the previous virtual-clock state; see
/// [`enter_virtual_clock`].
pub struct VirtualClockScope {
    prev: Option<u64>,
}

impl Drop for VirtualClockScope {
    fn drop(&mut self) {
        let prev = self.prev;
        VIRTUAL.with(|c| c.set(prev));
    }
}

/// Packs a directed link into one counter dimension key.
#[inline]
pub fn link_key(from: u32, to: u32) -> u64 {
    (u64::from(from) << 32) | u64::from(to)
}

/// Inverse of [`link_key`].
#[inline]
pub fn link_from_to(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// A drained batch of events, plus how many were lost to the per-lane
/// capacity bound.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Events, grouped by lane id and in record order within a lane.
    pub events: Vec<ObsEvent>,
    /// Events discarded because a lane was full.
    pub dropped: u64,
}

impl Snapshot {
    /// Sum of `delta`s of counter `name` across all keys and lanes.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Counter { name: n, delta, .. } if *n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// Per-key totals of counter `name`, ascending by key.
    pub fn counter_by_key(&self, name: &str) -> std::collections::BTreeMap<u64, u64> {
        let mut out = std::collections::BTreeMap::new();
        for e in &self.events {
            if let EventKind::Counter {
                name: n,
                key,
                delta,
            } = &e.kind
            {
                if *n == name {
                    *out.entry(*key).or_insert(0) += *delta;
                }
            }
        }
        out
    }

    /// Whether any span with this name was opened.
    pub fn has_span(&self, name: &str) -> bool {
        self.events
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Begin(n) if *n == name))
    }

    /// All distinct event names, sorted.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self.events.iter().map(|e| e.kind.name()).collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// All samples of histogram `name`, in record order.
    pub fn values(&self, name: &str) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Value { name: n, value } if *n == name => Some(*value),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// The recorder is process-global, so tests that enable/drain/reset it
    /// must serialize. Every obs unit test takes this guard first.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub fn serialize() -> MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = test_support::serialize();
        reset();
        disable();
        counter("t.count", 3);
        observe("t.hist", 9);
        instant("t.mark");
        let _s = span("t.span");
        drop(_s);
        let snap = drain();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn events_round_trip_with_keys_and_totals() {
        let _g = test_support::serialize();
        reset();
        enable(Some(1024));
        counter("t.bytes", 10);
        counter_keyed("t.bytes", link_key(1, 2), 32);
        counter_keyed("t.bytes", link_key(1, 2), 8);
        observe("t.delay", 7);
        instant_keyed("t.crash", 4);
        {
            let _s = span("t.work");
            counter("t.inner", 1);
        }
        disable();
        let snap = drain();
        assert_eq!(snap.counter_total("t.bytes"), 50);
        assert_eq!(
            snap.counter_by_key("t.bytes").get(&link_key(1, 2)),
            Some(&40)
        );
        assert!(snap.has_span("t.work"));
        assert_eq!(snap.values("t.delay"), vec![7]);
        // Begin comes before the inner counter, End after it.
        let kinds: Vec<&EventKind> = snap.events.iter().map(|e| &e.kind).collect();
        let begin = kinds
            .iter()
            .position(|k| matches!(k, EventKind::Begin("t.work")))
            .unwrap();
        let end = kinds
            .iter()
            .position(|k| matches!(k, EventKind::End("t.work")))
            .unwrap();
        assert!(begin < end);
        reset();
    }

    #[test]
    fn virtual_clock_scopes_stamp_and_restore() {
        let _g = test_support::serialize();
        reset();
        enable(Some(1024));
        instant("t.wall-before");
        {
            let _v = enter_virtual_clock(100);
            instant("t.virtual");
            set_virtual_now(250);
            instant("t.virtual-later");
        }
        instant("t.wall-after");
        disable();
        let snap = drain();
        let find = |name: &str| {
            snap.events
                .iter()
                .find(|e| e.kind.name() == name)
                .unwrap_or_else(|| panic!("missing {name}"))
        };
        assert_eq!(find("t.wall-before").clock, Clock::Wall);
        let v = find("t.virtual");
        assert_eq!((v.clock, v.ts), (Clock::Virtual, 100));
        let vl = find("t.virtual-later");
        assert_eq!((vl.clock, vl.ts), (Clock::Virtual, 250));
        assert_eq!(find("t.wall-after").clock, Clock::Wall);
        reset();
    }

    #[test]
    fn capacity_bounds_a_lane_and_counts_drops() {
        let _g = test_support::serialize();
        reset();
        enable(Some(4));
        for _ in 0..10 {
            counter("t.c", 1);
        }
        disable();
        let snap = drain();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        reset();
        // Restore the default so later tests are not artificially bounded.
        CAPACITY.store(DEFAULT_CAPACITY, Ordering::Relaxed);
    }

    #[test]
    fn scoped_threads_get_their_own_lanes() {
        let _g = test_support::serialize();
        reset();
        enable(Some(1024));
        counter("t.main", 1);
        std::thread::scope(|s| {
            s.spawn(|| counter("t.worker", 1));
        });
        disable();
        let snap = drain();
        assert_eq!(snap.counter_total("t.main"), 1);
        assert_eq!(snap.counter_total("t.worker"), 1, "worker lane survives");
        let lanes: std::collections::BTreeSet<u32> = snap.events.iter().map(|e| e.lane).collect();
        assert_eq!(lanes.len(), 2, "one lane per thread");
        reset();
    }

    #[test]
    fn link_key_round_trips() {
        assert_eq!(link_from_to(link_key(7, 31)), (7, 31));
        assert_eq!(link_from_to(link_key(0, 0)), (0, 0));
        assert_ne!(link_key(0, 0), NO_KEY);
    }
}
