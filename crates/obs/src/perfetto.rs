//! Chrome trace-event ("Trace Event Format") exporter — the JSON array
//! flavor that both `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! open directly.
//!
//! The two clock domains become two *processes* in the viewer: pid 1 is
//! the virtual domain (sim ticks rendered as microseconds, so one tick
//! reads as 1µs on the timeline), pid 2 the wall domain (anchor-relative
//! nanoseconds). Each recording lane is a thread row. Spans map to
//! `B`/`E` duration events, instants to `i`, counters to `C` with running
//! totals so the viewer plots cumulative series.
//!
//! One drained [`Snapshot`] is meant to cover one run: timestamps restart
//! when a new simulation starts, so drain between runs.

use crate::json::json_string;
use crate::recorder::{link_from_to, Clock, EventKind, ObsEvent, Snapshot, NO_KEY};
use std::collections::BTreeMap;

/// Exporter options.
#[derive(Clone, Copy, Debug)]
pub struct TraceOptions {
    /// Include wall-domain events. The golden-pinned export in the test
    /// suite turns this off: virtual-domain events are deterministic for
    /// a fixed seed, wall-domain ones are not.
    pub include_wall: bool,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions { include_wall: true }
    }
}

/// Human-readable label for a dimension key: directed links recorded
/// under `*.link.*` names render as `from->to`, everything else as the
/// plain number. `None` for [`NO_KEY`].
pub fn key_label(name: &str, key: u64) -> Option<String> {
    if key == NO_KEY {
        return None;
    }
    if name.contains(".link.") {
        let (from, to) = link_from_to(key);
        Some(format!("{from}->{to}"))
    } else {
        Some(key.to_string())
    }
}

/// The counter-series name a keyed counter plots under: `name[label]`,
/// or the plain name when unkeyed.
pub fn series_name(name: &str, key: u64) -> String {
    match key_label(name, key) {
        Some(label) => format!("{name}[{label}]"),
        None => name.to_string(),
    }
}

fn pid(clock: Clock) -> u32 {
    match clock {
        Clock::Virtual => 1,
        Clock::Wall => 2,
    }
}

/// Timestamp in the format's microsecond unit: virtual ticks one-to-one,
/// wall nanoseconds as fractional microseconds.
fn ts(e: &ObsEvent) -> String {
    match e.clock {
        Clock::Virtual => e.ts.to_string(),
        Clock::Wall => format!("{}.{:03}", e.ts / 1000, e.ts % 1000),
    }
}

/// Renders a drained snapshot as a Chrome trace-event JSON document.
pub fn render_trace(snap: &Snapshot, opts: &TraceOptions) -> String {
    let events: Vec<&ObsEvent> = snap
        .events
        .iter()
        .filter(|e| opts.include_wall || e.clock == Clock::Virtual)
        .collect();
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, line: &str| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        out.push_str(line);
    };

    // Name the processes and threads that actually appear.
    let mut pids: Vec<u32> = events.iter().map(|e| pid(e.clock)).collect();
    pids.sort_unstable();
    pids.dedup();
    for p in &pids {
        let label = if *p == 1 {
            "virtual (sim ticks)"
        } else {
            "wall clock"
        };
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"M\", \"pid\": {p}, \"name\": \"process_name\", \
                 \"args\": {{\"name\": {}}}}}",
                json_string(label)
            ),
        );
    }
    let mut threads: Vec<(u32, u32)> = events.iter().map(|e| (pid(e.clock), e.lane)).collect();
    threads.sort_unstable();
    threads.dedup();
    for (p, lane) in &threads {
        push(
            &mut out,
            &format!(
                "{{\"ph\": \"M\", \"pid\": {p}, \"tid\": {lane}, \
                 \"name\": \"thread_name\", \"args\": {{\"name\": {}}}}}",
                json_string(&format!("lane {lane}"))
            ),
        );
    }

    // Running totals per (clock domain, counter series).
    let mut totals: BTreeMap<(u32, String), u64> = BTreeMap::new();
    for e in &events {
        let (p, t) = (pid(e.clock), ts(e));
        let line = match &e.kind {
            EventKind::Begin(name) => format!(
                "{{\"ph\": \"B\", \"pid\": {p}, \"tid\": {}, \"ts\": {t}, \"name\": {}}}",
                e.lane,
                json_string(name)
            ),
            EventKind::End(name) => format!(
                "{{\"ph\": \"E\", \"pid\": {p}, \"tid\": {}, \"ts\": {t}, \"name\": {}}}",
                e.lane,
                json_string(name)
            ),
            EventKind::Point { name, key } => {
                let args = match key_label(name, *key) {
                    Some(label) => format!(", \"args\": {{\"key\": {}}}", json_string(&label)),
                    None => String::new(),
                };
                format!(
                    "{{\"ph\": \"i\", \"s\": \"t\", \"pid\": {p}, \"tid\": {}, \
                     \"ts\": {t}, \"name\": {}{args}}}",
                    e.lane,
                    json_string(name)
                )
            }
            EventKind::Counter { name, key, delta } => {
                let series = series_name(name, *key);
                let slot = totals.entry((p, series.clone())).or_insert(0);
                *slot += delta;
                format!(
                    "{{\"ph\": \"C\", \"pid\": {p}, \"tid\": {}, \"ts\": {t}, \
                     \"name\": {}, \"args\": {{\"value\": {}}}}}",
                    e.lane,
                    json_string(&series),
                    *slot
                )
            }
            EventKind::Value { name, value } => format!(
                "{{\"ph\": \"C\", \"pid\": {p}, \"tid\": {}, \"ts\": {t}, \
                 \"name\": {}, \"args\": {{\"value\": {value}}}}}",
                e.lane,
                json_string(name)
            ),
        };
        push(&mut out, &line);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::recorder::link_key;

    fn ev(lane: u32, clock: Clock, ts: u64, kind: EventKind) -> ObsEvent {
        ObsEvent {
            lane,
            clock,
            ts,
            kind,
        }
    }

    fn sample() -> Snapshot {
        Snapshot {
            events: vec![
                ev(0, Clock::Virtual, 5, EventKind::Begin("sim.event.invoke")),
                ev(
                    0,
                    Clock::Virtual,
                    5,
                    EventKind::Counter {
                        name: "sim.link.bytes",
                        key: link_key(0, 2),
                        delta: 24,
                    },
                ),
                ev(
                    0,
                    Clock::Virtual,
                    5,
                    EventKind::Counter {
                        name: "sim.link.bytes",
                        key: link_key(0, 2),
                        delta: 8,
                    },
                ),
                ev(0, Clock::Virtual, 5, EventKind::End("sim.event.invoke")),
                ev(
                    0,
                    Clock::Virtual,
                    9,
                    EventKind::Point {
                        name: "sim.crash",
                        key: 3,
                    },
                ),
                ev(1, Clock::Wall, 1_234_567, EventKind::Begin("ralin.search")),
                ev(1, Clock::Wall, 2_000_000, EventKind::End("ralin.search")),
                ev(
                    1,
                    Clock::Wall,
                    2_000_000,
                    EventKind::Value {
                        name: "ralin.shard_nanos",
                        value: 42,
                    },
                ),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn trace_is_valid_json_with_both_domains() {
        let json = render_trace(&sample(), &TraceOptions::default());
        assert_eq!(validate(&json), Ok(()), "{json}");
        assert!(json.contains("\"sim.event.invoke\""));
        assert!(json.contains("\"ralin.search\""));
        assert!(json.contains("sim.link.bytes[0->2]"));
        // Running total: the second counter sample plots 32, not 8.
        assert!(json.contains("\"value\": 32"));
        // Wall nanoseconds render as fractional microseconds.
        assert!(json.contains("\"ts\": 1234.567"));
    }

    #[test]
    fn wall_domain_can_be_excluded() {
        let json = render_trace(
            &sample(),
            &TraceOptions {
                include_wall: false,
            },
        );
        assert_eq!(validate(&json), Ok(()));
        assert!(json.contains("sim.event.invoke"));
        assert!(!json.contains("ralin.search"));
        assert!(!json.contains("wall clock"));
    }

    #[test]
    fn key_labels_distinguish_links_from_plain_keys() {
        assert_eq!(key_label("sim.link.bytes", link_key(1, 2)).unwrap(), "1->2");
        assert_eq!(key_label("sim.crash", 3).unwrap(), "3");
        assert_eq!(key_label("sim.invokes", NO_KEY), None);
        assert_eq!(series_name("sim.invokes", NO_KEY), "sim.invokes");
    }
}
