//! `OBS_report.json` — the machine-readable artifact the CI workflow
//! uploads. Hand-rolled serialization in the `ANALYZE_report.json` idiom;
//! the shape is stable so downstream tooling can diff runs:
//!
//! ```json
//! {
//!   "events": 812345,
//!   "dropped": 0,
//!   "counters": [{"name": "sim.invokes", "key": null, "total": 2048}],
//!   "histograms": [{"name": "sim.link.delay", "count": 98000, "min": 1,
//!                   "p50": 9, "p90": 30, "p99": 41, "max": 44, "sum": 1187423}],
//!   "spans": [{"name": "sim.event.invoke", "count": 2048,
//!              "virtual_ticks": 0, "wall_nanos": 0}]
//! }
//! ```

use crate::json::json_string;
use crate::recorder::Snapshot;
use crate::summary::aggregate;
use std::fmt::Write as _;

/// Renders the snapshot as the `OBS_report.json` document.
pub fn render_report(snap: &Snapshot) -> String {
    let agg = aggregate(snap);
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"events\": {},", agg.events);
    let _ = writeln!(out, "  \"dropped\": {},", agg.dropped);
    let _ = writeln!(out, "  \"counters\": [");
    for (i, c) in agg.counters.iter().enumerate() {
        let sep = if i + 1 < agg.counters.len() { "," } else { "" };
        let key = match &c.key {
            Some(k) => json_string(k),
            None => "null".to_string(),
        };
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"key\": {key}, \"total\": {}}}{sep}",
            json_string(c.name),
            c.total
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"histograms\": [");
    for (i, (name, h)) in agg.histograms.iter().enumerate() {
        let sep = if i + 1 < agg.histograms.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"count\": {}, \"min\": {}, \"p50\": {}, \
             \"p90\": {}, \"p99\": {}, \"max\": {}, \"sum\": {}}}{sep}",
            json_string(name),
            h.count,
            h.min,
            h.p50,
            h.p90,
            h.p99,
            h.max,
            h.sum
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"spans\": [");
    for (i, s) in agg.spans.iter().enumerate() {
        let sep = if i + 1 < agg.spans.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"count\": {}, \"virtual_ticks\": {}, \
             \"wall_nanos\": {}}}{sep}",
            json_string(s.name),
            s.count,
            s.virtual_ticks,
            s.wall_nanos
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate;
    use crate::recorder::{link_key, Clock, EventKind, ObsEvent};

    #[test]
    fn report_is_valid_json_with_stable_shape() {
        let snap = Snapshot {
            events: vec![
                ObsEvent {
                    lane: 0,
                    clock: Clock::Virtual,
                    ts: 1,
                    kind: EventKind::Counter {
                        name: "sim.link.bytes",
                        key: link_key(0, 1),
                        delta: 12,
                    },
                },
                ObsEvent {
                    lane: 0,
                    clock: Clock::Virtual,
                    ts: 2,
                    kind: EventKind::Value {
                        name: "sim.link.delay",
                        value: 5,
                    },
                },
                ObsEvent {
                    lane: 0,
                    clock: Clock::Virtual,
                    ts: 2,
                    kind: EventKind::Begin("sim.run"),
                },
                ObsEvent {
                    lane: 0,
                    clock: Clock::Virtual,
                    ts: 9,
                    kind: EventKind::End("sim.run"),
                },
            ],
            dropped: 1,
        };
        let json = render_report(&snap);
        assert_eq!(validate(&json), Ok(()), "{json}");
        assert!(json.contains("\"dropped\": 1"));
        assert!(json.contains("\"key\": \"0->1\""));
        assert!(json.contains("\"virtual_ticks\": 7"));
    }

    #[test]
    fn empty_snapshot_renders_empty_sections() {
        let json = render_report(&Snapshot::default());
        assert_eq!(validate(&json), Ok(()), "{json}");
        assert!(json.contains("\"events\": 0"));
    }
}
