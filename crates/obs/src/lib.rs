#![warn(missing_docs)]
//! Dependency-free structured observability for the RA-linearizability
//! workspace: spans, counters, and fixed-bucket histograms recorded into
//! per-thread lanes behind a global sink, with Chrome-trace/Perfetto
//! export, a human-readable summary table, and a JSON report artifact.
//!
//! # Design constraints
//!
//! * **Inert.** Recording observes state and never feeds back: with
//!   observability on or off, sim traces and checker verdicts are
//!   byte-identical (`tests/determinism.rs` and `tests/sim_determinism.rs`
//!   pin this across the whole scenario corpus).
//! * **~Free when off.** Every entry point is one relaxed atomic load on
//!   the disabled path; hot loops keep their instrumentation permanently.
//! * **Deterministic where it can be.** Events recorded under a
//!   simulation's virtual clock carry sim-tick timestamps and reproduce
//!   exactly for a fixed seed; only events outside a sim read wall time,
//!   and all wall reads go through the single lint-allowlisted
//!   [`wallclock`] module.
//!
//! # Enablement
//!
//! This crate is pure mechanism: [`enable`] / [`disable`] / [`drain`] are
//! programmatic. Policy — the `RAL_OBS`, `RAL_OBS_OUT`, and
//! `RAL_OBS_CAPACITY` environment variables — lives in `ral_core::env`
//! like every other `RAL_*` read, so the determinism lint keeps the env
//! surface single-filed.
//!
//! ```
//! ral_obs::reset();
//! ral_obs::enable(None);
//! {
//!     let _clock = ral_obs::enter_virtual_clock(10);
//!     let _span = ral_obs::span("sim.event.invoke");
//!     ral_obs::counter_keyed("sim.link.bytes", ral_obs::link_key(0, 1), 24);
//! }
//! ral_obs::disable();
//! let snapshot = ral_obs::drain();
//! assert_eq!(snapshot.counter_total("sim.link.bytes"), 24);
//! let trace = ral_obs::perfetto::render_trace(&snapshot, &Default::default());
//! assert!(ral_obs::json::validate(&trace).is_ok());
//! ```

pub mod json;
pub mod perfetto;
mod recorder;
pub mod report;
pub mod summary;
pub mod wallclock;

pub use recorder::{
    capacity, counter, counter_keyed, disable, drain, enable, enabled, enter_virtual_clock,
    instant, instant_keyed, link_from_to, link_key, observe, reset, set_virtual_now, span, Clock,
    EventKind, ObsEvent, Snapshot, SpanGuard, VirtualClockScope, DEFAULT_CAPACITY, NO_KEY,
};
