//! The workspace's **only** wall-clock read.
//!
//! The determinism lint (`ral-analyze`) bans `Instant`/`SystemTime`
//! everywhere outside `crates/bench`, because wall time observed by
//! trace-affecting code breaks seed-replayability. Observability needs
//! wall time for exactly one thing — stamping events recorded *outside* a
//! simulation's virtual clock (checker spans, pool utilization) — and by
//! construction those stamps flow only into obs output, never into a
//! trace, history, or verdict. That single justified read lives here,
//! suppressed by the one `wall-clock` entry for this file in
//! `crates/analyze/lint_allowlist.txt`; an `Instant` anywhere else in
//! this crate still fails the gate (`lint_selftest.rs` pins that).

use std::sync::OnceLock;
use std::time::Instant;

static ANCHOR: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since a process-local anchor (the first call). Monotone,
/// comparable within one process, meaningless across processes — which is
/// all a trace viewer needs.
pub fn now_nanos() -> u64 {
    let anchor = *ANCHOR.get_or_init(Instant::now);
    Instant::now().duration_since(anchor).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }
}
