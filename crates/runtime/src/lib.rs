#![warn(missing_docs)]
//! Replicated-execution substrate for the RA-linearizability reproduction.
//!
//! Implements the labeled transition system of Section 3.1 (operation-based
//! CRDTs: generator/effector split, causal delivery) and Appendix D.2
//! (state-based CRDTs: local updates, merge-based propagation with message
//! loss, duplication, and reordering), recording the history `(L, vis)` of
//! every run.
//!
//! * [`gen`] — the generator context: fresh timestamps (Lamport clocks per
//!   replica) and unique identifiers;
//! * [`op_based`] — the [`op_based::OpBased`] trait and single-object
//!   [`op_based::Cluster`];
//! * [`multi`] — [`multi::MultiCluster`]: several objects of one data type
//!   under the unrestricted composition `⊗` or the shared-timestamp
//!   composition `⊗ts` (Section 5.3);
//! * [`state_based`] — the [`state_based::StateBased`] trait and
//!   [`state_based::StateCluster`];
//! * [`delta`] — delta-state replication: the [`delta::DeltaCrdt`]
//!   delta-mutator API and [`delta::DeltaCluster`], a bandwidth-proportional
//!   transport with per-replica delta buffers, interval batching,
//!   ack-driven garbage collection, and full-state resync fallback;
//! * [`schedule`] — seeded random schedulers driving clusters through
//!   interleavings, plus convergence helpers.
//!
//! Since the mailbox refactor, all four transports share one delivery core:
//!
//! * [`membership`] — per-replica liveness (crash/restart) and visibility
//!   (seen-set) bookkeeping, the [`membership::Member`] every node embeds;
//! * [`mailbox`] — per-replica delivery queues over a cluster-wide pool of
//!   immutable [`mailbox::DeliveryRecord`]s, drained in one ascending pass;
//! * [`exec`] — the sharded executor running per-replica work (mailbox
//!   drains, merge phases) across a worker pool. Parallelism is configured
//!   by [`exec::ExecConfig`] (`RAL_RUNTIME_THREADS`) and is **outcome
//!   invariant by construction**: a drain mutates only its own replica's
//!   node while reading immutable shared records, so histories and traces
//!   are byte-identical at every thread count, seeded or free-running.
//!
//! All three cluster kinds expose targeted per-message delivery
//! (`can_deliver`/`deliver`, `apply`) and crash/restart entry points; the
//! `ral-sim` crate builds a deterministic discrete-event network simulator
//! (latency, partitions, crashes, topologies) on top of them.

pub mod delta;
pub mod exec;
pub mod gen;
pub mod mailbox;
pub mod membership;
pub mod multi;
pub mod op_based;
pub mod schedule;
pub mod state_based;

pub use delta::{DeltaCluster, DeltaConfig, DeltaCrdt, DeltaOutcome, DeltaStats};
pub use exec::{ExecConfig, ExecMode, ExecReport};
pub use gen::{GenCtx, GenOutcome};
pub use mailbox::{DeliveryRecord, Mailbox, Received};
pub use membership::Member;
pub use multi::{MultiCluster, TsMode};
pub use op_based::{Cluster, OpBased};
pub use state_based::{StateBased, StateCluster, StateOutcome};
