//! Operation-based CRDT objects and their replicated execution (Section 3.1).
//!
//! An operation splits into a **generator** — runs once at the origin
//! replica, reads the state, returns the value and produces an effector —
//! and an **effector** — applied exactly once at every replica. The
//! [`Cluster`] implements the OPERATION and EFFECTOR rules of Figure 7,
//! including their side conditions: timestamps exceed everything visible,
//! effectors are delivered at most once per replica, and delivery is
//! *causal* (an effector is deliverable only after the effectors of every
//! operation visible to it).

use crate::gen::{GenCtx, GenOutcome};
use ral_core::bitset::BitSet;
use ral_core::history::{History, OpRecord};
use ral_core::ids::ReplicaId;
use ral_obs as obs;
use std::fmt::Debug;

/// An operation-based CRDT, in the style of Listings 1–5.
pub trait OpBased {
    /// Replica state (the `payload` declaration).
    type State: Clone + Debug + PartialEq;
    /// A method invocation: name plus arguments.
    type Call: Clone + Debug;
    /// Return values.
    type Ret: Clone + Debug + PartialEq;
    /// Effector payloads (the arguments the generator passes to the
    /// effector).
    type Eff: Clone + Debug;
    /// Operation labels `m(a) ⇒ b` as recorded in histories.
    type Label: Clone + Debug;

    /// The initial replica state.
    fn initial(&self) -> Self::State;

    /// Runs the generator of `call` against `state` at the origin replica.
    ///
    /// Returns [`GenOutcome::Refused`] when the precondition fails; the
    /// cluster then records nothing.
    fn generator(
        &self,
        state: &Self::State,
        call: &Self::Call,
        ctx: &mut GenCtx,
    ) -> GenOutcome<Self::Ret, Self::Eff>;

    /// Applies an effector to a replica state.
    fn apply(&self, state: &mut Self::State, eff: &Self::Eff);

    /// The label of an invocation that returned `ret`.
    fn label(&self, call: &Self::Call, ret: &Self::Ret) -> Self::Label;
}

/// A successful invocation: the return value and the operation's history
/// index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invoked<R> {
    /// Return value.
    pub ret: R,
    /// Index of the operation in the cluster's history.
    pub op: usize,
}

#[derive(Clone)]
struct ReplicaNode<S> {
    state: S,
    seen: BitSet,
    clock: u64,
    // Whether the replica process is running. Op-based replica state is
    // durable (state, seen, clock survive a crash): losing an applied
    // effector would be unrecoverable under exactly-once delivery, so a
    // crash only *halts* the replica. Undelivered effectors stay pending
    // and are re-delivered after restart.
    up: bool,
}

#[derive(Clone)]
struct Delivery<E> {
    op: usize,
    eff: Option<E>,
    // The origin replica's Lamport clock right after the generator ran;
    // receivers take the max, so clocks propagate even through identity
    // effectors (the paper's "counter increased monotonically with every
    // new operation, originating at the replica or delivered from another",
    // Section 5.3).
    clock: u64,
    delivered: Vec<bool>,
}

/// A single replicated object: `n` replicas, a pool of undelivered
/// effectors, and the history recorded so far.
///
/// # Examples
///
/// ```
/// use ral_runtime::gen::{GenCtx, GenOutcome};
/// use ral_runtime::op_based::{Cluster, OpBased};
/// use ral_core::ids::ReplicaId;
///
/// /// A grow-only counter.
/// struct GCounter;
///
/// impl OpBased for GCounter {
///     type State = i64;
///     type Call = &'static str; // "inc" or "read"
///     type Ret = i64;
///     type Eff = ();
///     type Label = (String, i64);
///     fn initial(&self) -> i64 { 0 }
///     fn generator(&self, st: &i64, call: &&'static str, _ctx: &mut GenCtx)
///         -> GenOutcome<i64, ()> {
///         match *call {
///             "inc" => GenOutcome::update(0, ()),
///             _ => GenOutcome::query(*st),
///         }
///     }
///     fn apply(&self, st: &mut i64, _eff: &()) { *st += 1; }
///     fn label(&self, call: &&'static str, ret: &i64) -> (String, i64) {
///         (call.to_string(), *ret)
///     }
/// }
///
/// let mut cluster = Cluster::new(GCounter, 2);
/// cluster.invoke(ReplicaId(0), "inc");
/// // The other replica hasn't seen the increment yet.
/// let stale = cluster.invoke(ReplicaId(1), "read").unwrap();
/// assert_eq!(stale.ret, 0);
/// cluster.deliver_all();
/// let fresh = cluster.invoke(ReplicaId(1), "read").unwrap();
/// assert_eq!(fresh.ret, 1);
/// ```
// Cloning a cluster (possible whenever the descriptor is `Clone`) forks the
// whole configuration — replica states, pending deliveries, history — which
// is what `ral-analyze`'s bounded-exhaustive search branches on.
#[derive(Clone)]
pub struct Cluster<C: OpBased> {
    crdt: C,
    replicas: Vec<ReplicaNode<C::State>>,
    deliveries: Vec<Delivery<C::Eff>>,
    history: History<C::Label>,
    next_uid: u64,
}

impl<C: OpBased> Cluster<C> {
    /// Creates a cluster of `n_replicas` replicas, all in the initial state.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn new(crdt: C, n_replicas: usize) -> Self {
        assert!(n_replicas > 0, "a cluster needs at least one replica");
        let replicas = (0..n_replicas)
            .map(|_| ReplicaNode {
                state: crdt.initial(),
                seen: BitSet::new(),
                clock: 0,
                up: true,
            })
            .collect();
        Cluster {
            crdt,
            replicas,
            deliveries: Vec::new(),
            history: History::new(),
            next_uid: 0,
        }
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The CRDT descriptor.
    pub fn crdt(&self) -> &C {
        &self.crdt
    }

    /// The state of replica `r`.
    pub fn state(&self, r: ReplicaId) -> &C::State {
        &self.replicas[r.0 as usize].state
    }

    /// The history recorded so far.
    pub fn history(&self) -> &History<C::Label> {
        &self.history
    }

    /// Consumes the cluster, returning its history.
    pub fn into_history(self) -> History<C::Label> {
        self.history
    }

    /// The set of operations whose effector has been applied at replica `r`.
    pub fn seen(&self, r: ReplicaId) -> &BitSet {
        &self.replicas[r.0 as usize].seen
    }

    /// Invokes `call` at replica `r` (the OPERATION rule).
    ///
    /// Returns `None` if the generator's precondition refuses the call.
    ///
    /// # Panics
    ///
    /// Panics if the replica is crashed (see [`Cluster::crash`]).
    pub fn invoke(&mut self, r: ReplicaId, call: C::Call) -> Option<Invoked<C::Ret>> {
        let idx = r.0 as usize;
        let node = &self.replicas[idx];
        assert!(node.up, "cannot invoke at crashed replica {r}");
        let mut ctx = GenCtx::new(r, node.clock, self.next_uid);
        match self.crdt.generator(&node.state, &call, &mut ctx) {
            GenOutcome::Refused => None,
            GenOutcome::Done { ret, eff } => {
                let label = self.crdt.label(&call, &ret);
                let record = match ctx.issued_ts() {
                    Some(ts) => OpRecord::with_ts(label, r, ts),
                    None => OpRecord::new(label, r),
                };
                let node = &mut self.replicas[idx];
                let op = self.history.push_set(record, node.seen.clone());
                node.clock = ctx.clock();
                self.next_uid = ctx.uid_counter();
                if let Some(eff) = &eff {
                    self.crdt.apply(&mut node.state, eff);
                }
                node.seen.insert(op);
                let clock = node.clock;
                let mut delivered = vec![false; self.replicas.len()];
                delivered[idx] = true;
                self.deliveries.push(Delivery {
                    op,
                    eff,
                    clock,
                    delivered,
                });
                Some(Invoked { ret, op })
            }
        }
    }

    /// Operations whose effector is deliverable at replica `r` under causal
    /// delivery: not yet applied there, with every visible predecessor
    /// already applied. Empty while the replica is crashed.
    pub fn deliverable(&self, r: ReplicaId) -> Vec<usize> {
        let node = &self.replicas[r.0 as usize];
        if !node.up {
            return Vec::new();
        }
        self.deliveries
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.delivered[r.0 as usize])
            .filter(|(_, d)| self.history.preds(d.op).is_subset(&node.seen))
            .map(|(i, _)| i)
            .collect()
    }

    /// Delivers pending effector `delivery` (an index into the deliverable
    /// pool) at replica `r` (the EFFECTOR rule).
    ///
    /// # Panics
    ///
    /// Panics if the effector was already applied at `r` or if causal
    /// delivery would be violated.
    pub fn deliver(&mut self, r: ReplicaId, delivery: usize) {
        let idx = r.0 as usize;
        assert!(
            self.replicas[idx].up,
            "cannot deliver at crashed replica {r}"
        );
        let d = &mut self.deliveries[delivery];
        assert!(
            !d.delivered[idx],
            "effector of operation {} already applied at {r}",
            d.op
        );
        let node = &mut self.replicas[idx];
        assert!(
            self.history.preds(d.op).is_subset(&node.seen),
            "causal delivery violated: operation {} has undelivered predecessors at {r}",
            d.op
        );
        if let Some(eff) = &d.eff {
            self.crdt.apply(&mut node.state, eff);
        }
        node.clock = node.clock.max(d.clock);
        node.seen.insert(d.op);
        d.delivered[idx] = true;
    }

    /// Delivers every pending effector everywhere, respecting causal order.
    pub fn deliver_all(&mut self) {
        let _span = obs::span("runtime.deliver_all");
        loop {
            let mut progress = false;
            obs::counter("runtime.deliver_rounds", 1);
            for r in 0..self.replicas.len() {
                let r = ReplicaId(r as u32);
                for d in self.deliverable(r) {
                    self.deliver(r, d);
                    obs::counter("runtime.deliveries", 1);
                    progress = true;
                }
            }
            if !progress {
                return;
            }
        }
    }

    /// Returns `true` if all replicas are in the same state (strong eventual
    /// consistency requires this once every effector is delivered).
    pub fn converged(&self) -> bool {
        self.replicas.windows(2).all(|w| w[0].state == w[1].state)
    }

    /// The history index of pending delivery `d`.
    pub fn delivery_op(&self, d: usize) -> usize {
        self.deliveries[d].op
    }

    /// The effector payload of pending delivery `d` (`None` for queries).
    pub fn delivery_eff(&self, d: usize) -> Option<&C::Eff> {
        self.deliveries[d].eff.as_ref()
    }

    /// Number of (replica, effector) deliveries still pending.
    pub fn pending(&self) -> usize {
        self.deliveries
            .iter()
            .map(|d| d.delivered.iter().filter(|&&x| !x).count())
            .sum()
    }

    /// Total number of deliveries created so far (one per successful
    /// invocation). Delivery ids are dense: `0..n_deliveries()`.
    pub fn n_deliveries(&self) -> usize {
        self.deliveries.len()
    }

    /// Whether delivery `d` has already been applied at replica `r`.
    pub fn is_delivered(&self, d: usize, r: ReplicaId) -> bool {
        self.deliveries[d].delivered[r.0 as usize]
    }

    /// Non-panicking probe for [`Cluster::deliver`]: `true` iff the replica
    /// is up, the effector has not been applied there, and causal delivery
    /// admits it now.
    pub fn can_deliver(&self, r: ReplicaId, d: usize) -> bool {
        let node = &self.replicas[r.0 as usize];
        node.up
            && !self.deliveries[d].delivered[r.0 as usize]
            && self
                .history
                .preds(self.deliveries[d].op)
                .is_subset(&node.seen)
    }

    /// Whether replica `r` is running (not crashed).
    pub fn is_up(&self, r: ReplicaId) -> bool {
        self.replicas[r.0 as usize].up
    }

    /// Crashes replica `r`: the process halts, refusing invocations and
    /// deliveries. Its state, applied set, and clock are durable; pending
    /// effectors addressed to it stay buffered in the network and become
    /// deliverable again after [`Cluster::restart`].
    pub fn crash(&mut self, r: ReplicaId) {
        self.replicas[r.0 as usize].up = false;
    }

    /// Restarts a crashed replica; it resumes exactly where it halted.
    pub fn restart(&mut self, r: ReplicaId) {
        self.replicas[r.0 as usize].up = true;
    }

    /// Restarts every crashed replica.
    pub fn restart_all(&mut self) {
        for node in &mut self.replicas {
            node.up = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An add-only set used to exercise the cluster plumbing.
    struct GSet;

    impl OpBased for GSet {
        type State = Vec<u32>;
        type Call = Call;
        type Ret = Vec<u32>;
        type Eff = u32;
        type Label = Call;

        fn initial(&self) -> Vec<u32> {
            Vec::new()
        }

        fn generator(
            &self,
            state: &Vec<u32>,
            call: &Call,
            _ctx: &mut GenCtx,
        ) -> GenOutcome<Vec<u32>, u32> {
            match call {
                Call::Add(x) => GenOutcome::update(Vec::new(), *x),
                Call::Read => GenOutcome::query(state.clone()),
            }
        }

        fn apply(&self, state: &mut Vec<u32>, eff: &u32) {
            if !state.contains(eff) {
                state.push(*eff);
                state.sort_unstable();
            }
        }

        fn label(&self, call: &Call, _ret: &Vec<u32>) -> Call {
            call.clone()
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Call {
        Add(u32),
        Read,
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn origin_applies_immediately() {
        let mut c = Cluster::new(GSet, 3);
        c.invoke(r(0), Call::Add(7)).unwrap();
        assert_eq!(c.state(r(0)), &vec![7]);
        assert_eq!(c.state(r(1)), &Vec::<u32>::new());
    }

    #[test]
    fn delivery_propagates() {
        let mut c = Cluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        assert_eq!(c.pending(), 1);
        let ds = c.deliverable(r(1));
        assert_eq!(ds.len(), 1);
        c.deliver(r(1), ds[0]);
        assert_eq!(c.state(r(1)), &vec![1]);
        assert_eq!(c.pending(), 0);
        assert!(c.converged());
    }

    #[test]
    fn causal_delivery_orders_dependent_effectors() {
        let mut c = Cluster::new(GSet, 2);
        let a = c.invoke(r(0), Call::Add(1)).unwrap();
        let b = c.invoke(r(0), Call::Add(2)).unwrap();
        // b sees a, so at r1 only a is deliverable first.
        assert_eq!(c.deliverable(r(1)).len(), 1);
        let first = c.deliverable(r(1))[0];
        assert_eq!(c.deliveries[first].op, a.op);
        c.deliver(r(1), first);
        let second = c.deliverable(r(1))[0];
        assert_eq!(c.deliveries[second].op, b.op);
        c.deliver(r(1), second);
        assert!(c.converged());
    }

    #[test]
    #[should_panic(expected = "causal delivery violated")]
    fn out_of_order_delivery_panics() {
        let mut c = Cluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        c.invoke(r(0), Call::Add(2)).unwrap();
        // Delivery 1 is the second op; its predecessor hasn't been applied.
        c.deliver(r(1), 1);
    }

    #[test]
    #[should_panic(expected = "already applied")]
    fn double_delivery_panics() {
        let mut c = Cluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        c.deliver(r(1), 0);
        c.deliver(r(1), 0);
    }

    #[test]
    fn history_records_visibility() {
        let mut c = Cluster::new(GSet, 2);
        let a = c.invoke(r(0), Call::Add(1)).unwrap();
        let b = c.invoke(r(1), Call::Add(2)).unwrap();
        c.deliver_all();
        let q = c.invoke(r(1), Call::Read).unwrap();
        assert_eq!(q.ret, vec![1, 2]);
        let h = c.history();
        assert!(h.concurrent(a.op, b.op));
        assert!(h.sees(q.op, a.op));
        assert!(h.sees(q.op, b.op));
        assert!(h.is_transitive());
    }

    #[test]
    fn queries_enter_visibility() {
        // A query generates an identity effector; once delivered it becomes
        // visible to later operations at that replica.
        let mut c = Cluster::new(GSet, 2);
        let q = c.invoke(r(0), Call::Read).unwrap();
        c.deliver_all();
        let b = c.invoke(r(1), Call::Add(2)).unwrap();
        assert!(c.history().sees(b.op, q.op));
    }

    #[test]
    fn deliver_all_converges() {
        let mut c = Cluster::new(GSet, 4);
        for i in 0..4 {
            c.invoke(r(i), Call::Add(i)).unwrap();
        }
        assert!(!c.converged());
        c.deliver_all();
        assert!(c.converged());
        assert_eq!(c.state(r(0)), &vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_cluster_panics() {
        let _ = Cluster::new(GSet, 0);
    }

    #[test]
    fn can_deliver_mirrors_deliver_preconditions() {
        let mut c = Cluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        c.invoke(r(0), Call::Add(2)).unwrap();
        assert_eq!(c.n_deliveries(), 2);
        assert!(c.is_delivered(0, r(0)), "origin applied immediately");
        assert!(c.can_deliver(r(1), 0));
        assert!(!c.can_deliver(r(1), 1), "predecessor not applied yet");
        c.deliver(r(1), 0);
        assert!(!c.can_deliver(r(1), 0), "already applied");
        assert!(c.can_deliver(r(1), 1));
    }

    #[test]
    fn crashed_replica_buffers_and_redelivers() {
        let mut c = Cluster::new(GSet, 2);
        c.crash(r(1));
        assert!(!c.is_up(r(1)));
        c.invoke(r(0), Call::Add(1)).unwrap();
        // The crashed replica refuses delivery; the effector stays pending.
        assert!(c.deliverable(r(1)).is_empty());
        assert!(!c.can_deliver(r(1), 0));
        c.deliver_all();
        assert_eq!(c.pending(), 1, "effector buffered for the crashed node");
        // Durable state: after restart the effector is re-delivered.
        c.restart_all();
        c.deliver_all();
        assert_eq!(c.pending(), 0);
        assert!(c.converged());
    }

    #[test]
    #[should_panic(expected = "cannot invoke at crashed replica")]
    fn invoking_at_crashed_replica_panics() {
        let mut c = Cluster::new(GSet, 2);
        c.crash(r(0));
        c.invoke(r(0), Call::Add(1));
    }
}
