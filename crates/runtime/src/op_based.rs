//! Operation-based CRDT objects and their replicated execution (Section 3.1).
//!
//! An operation splits into a **generator** — runs once at the origin
//! replica, reads the state, returns the value and produces an effector —
//! and an **effector** — applied exactly once at every replica. The
//! [`Cluster`] implements the OPERATION and EFFECTOR rules of Figure 7,
//! including their side conditions: timestamps exceed everything visible,
//! effectors are delivered at most once per replica, and delivery is
//! *causal* (an effector is deliverable only after the effectors of every
//! operation visible to it).
//!
//! Replication plumbing is the shared delivery core: invocations append an
//! immutable [`DeliveryRecord`] and post its id to every peer's
//! [`Mailbox`]; [`Cluster::deliver_all`] drains
//! each mailbox in one ascending pass, sharded across the configured
//! [`exec`] workers — see the [`crate::mailbox`] module docs
//! for why one pass reaches the fixpoint and why the drains parallelize
//! without changing a byte of any history.

use crate::exec::{self, ExecConfig};
use crate::gen::{GenCtx, GenOutcome};
use crate::mailbox::{self, DeliveryRecord, DrainObs, DrainStats, Mailbox, Received};
use crate::membership::Member;
use ral_core::bitset::BitSet;
use ral_core::history::{History, OpRecord};
use ral_core::ids::ReplicaId;
use ral_obs as obs;
use std::fmt::Debug;

/// An operation-based CRDT, in the style of Listings 1–5.
///
/// The `Send + Sync` bounds (on the descriptor and its associated data)
/// exist for the sharded executor: delivery drains may run on worker
/// threads, which share the descriptor and the record pool immutably.
/// Every shipped CRDT is plain data, so the bounds cost nothing.
pub trait OpBased: Sync {
    /// Replica state (the `payload` declaration).
    type State: Clone + Debug + PartialEq + Send + Sync;
    /// A method invocation: name plus arguments.
    type Call: Clone + Debug;
    /// Return values.
    type Ret: Clone + Debug + PartialEq;
    /// Effector payloads (the arguments the generator passes to the
    /// effector).
    type Eff: Clone + Debug + Send + Sync;
    /// Operation labels `m(a) ⇒ b` as recorded in histories.
    type Label: Clone + Debug + Send + Sync;

    /// The initial replica state.
    fn initial(&self) -> Self::State;

    /// Runs the generator of `call` against `state` at the origin replica.
    ///
    /// Returns [`GenOutcome::Refused`] when the precondition fails; the
    /// cluster then records nothing.
    fn generator(
        &self,
        state: &Self::State,
        call: &Self::Call,
        ctx: &mut GenCtx,
    ) -> GenOutcome<Self::Ret, Self::Eff>;

    /// Applies an effector to a replica state.
    fn apply(&self, state: &mut Self::State, eff: &Self::Eff);

    /// The label of an invocation that returned `ret`.
    fn label(&self, call: &Self::Call, ret: &Self::Ret) -> Self::Label;
}

/// A successful invocation: the return value and the operation's history
/// index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invoked<R> {
    /// Return value.
    pub ret: R,
    /// Index of the operation in the cluster's history.
    pub op: usize,
}

#[derive(Clone)]
struct ReplicaNode<S> {
    state: S,
    // Liveness + seen-set. Op-based replica state is durable (state, seen,
    // clock survive a crash): losing an applied effector would be
    // unrecoverable under exactly-once delivery, so a crash only *halts*
    // the replica. Undelivered effectors stay queued in the mailbox and
    // are re-delivered after restart.
    member: Member,
    clock: u64,
    mailbox: Mailbox,
}

/// A single replicated object: `n` replicas, a shared pool of effector
/// records with per-replica mailboxes, and the history recorded so far.
///
/// # Examples
///
/// ```
/// use ral_runtime::gen::{GenCtx, GenOutcome};
/// use ral_runtime::op_based::{Cluster, OpBased};
/// use ral_core::ids::ReplicaId;
///
/// /// A grow-only counter.
/// struct GCounter;
///
/// impl OpBased for GCounter {
///     type State = i64;
///     type Call = &'static str; // "inc" or "read"
///     type Ret = i64;
///     type Eff = ();
///     type Label = (String, i64);
///     fn initial(&self) -> i64 { 0 }
///     fn generator(&self, st: &i64, call: &&'static str, _ctx: &mut GenCtx)
///         -> GenOutcome<i64, ()> {
///         match *call {
///             "inc" => GenOutcome::update(0, ()),
///             _ => GenOutcome::query(*st),
///         }
///     }
///     fn apply(&self, st: &mut i64, _eff: &()) { *st += 1; }
///     fn label(&self, call: &&'static str, ret: &i64) -> (String, i64) {
///         (call.to_string(), *ret)
///     }
/// }
///
/// let mut cluster = Cluster::new(GCounter, 2);
/// cluster.invoke(ReplicaId(0), "inc");
/// // The other replica hasn't seen the increment yet.
/// let stale = cluster.invoke(ReplicaId(1), "read").unwrap();
/// assert_eq!(stale.ret, 0);
/// cluster.deliver_all();
/// let fresh = cluster.invoke(ReplicaId(1), "read").unwrap();
/// assert_eq!(fresh.ret, 1);
/// ```
// Cloning a cluster (possible whenever the descriptor is `Clone`) forks the
// whole configuration — replica states, pending deliveries, history — which
// is what `ral-analyze`'s bounded-exhaustive search branches on.
#[derive(Clone)]
pub struct Cluster<C: OpBased> {
    crdt: C,
    replicas: Vec<ReplicaNode<C::State>>,
    records: Vec<DeliveryRecord<C::Eff>>,
    history: History<C::Label>,
    next_uid: u64,
    exec: ExecConfig,
}

const OP_DRAIN_OBS: DrainObs = DrainObs {
    depth: "runtime.mailbox.depth",
    batch: "runtime.mailbox.batch",
    per_worker: "runtime.exec.worker_deliveries",
};

impl<C: OpBased> Cluster<C> {
    /// Creates a cluster of `n_replicas` replicas, all in the initial
    /// state, with the executor `RAL_RUNTIME_THREADS` configures
    /// (sequential when unset).
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn new(crdt: C, n_replicas: usize) -> Self {
        Cluster::with_exec(crdt, n_replicas, ExecConfig::from_env())
    }

    /// [`Cluster::new`] with an explicit executor configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn with_exec(crdt: C, n_replicas: usize, exec: ExecConfig) -> Self {
        assert!(n_replicas > 0, "a cluster needs at least one replica");
        let replicas = (0..n_replicas)
            .map(|_| ReplicaNode {
                state: crdt.initial(),
                member: Member::new(),
                clock: 0,
                mailbox: Mailbox::new(),
            })
            .collect();
        Cluster {
            crdt,
            replicas,
            records: Vec::new(),
            history: History::new(),
            next_uid: 0,
            exec,
        }
    }

    /// Replaces the executor configuration (delivery semantics are
    /// executor-invariant; this changes only how drains are scheduled).
    pub fn set_exec(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// The executor configuration delivery drains run under.
    pub fn exec(&self) -> &ExecConfig {
        &self.exec
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The CRDT descriptor.
    pub fn crdt(&self) -> &C {
        &self.crdt
    }

    /// The state of replica `r`.
    pub fn state(&self, r: ReplicaId) -> &C::State {
        &self.replicas[r.0 as usize].state
    }

    /// The history recorded so far.
    pub fn history(&self) -> &History<C::Label> {
        &self.history
    }

    /// Consumes the cluster, returning its history.
    pub fn into_history(self) -> History<C::Label> {
        self.history
    }

    /// The set of operations whose effector has been applied at replica `r`.
    pub fn seen(&self, r: ReplicaId) -> &BitSet {
        self.replicas[r.0 as usize].member.seen()
    }

    /// Invokes `call` at replica `r` (the OPERATION rule).
    ///
    /// Returns `None` if the generator's precondition refuses the call.
    ///
    /// # Panics
    ///
    /// Panics if the replica is crashed (see [`Cluster::crash`]).
    pub fn invoke(&mut self, r: ReplicaId, call: C::Call) -> Option<Invoked<C::Ret>> {
        let idx = r.0 as usize;
        let node = &self.replicas[idx];
        node.member.expect_up("invoke at", r);
        let mut ctx = GenCtx::new(r, node.clock, self.next_uid);
        match self.crdt.generator(&node.state, &call, &mut ctx) {
            GenOutcome::Refused => None,
            GenOutcome::Done { ret, eff } => {
                let label = self.crdt.label(&call, &ret);
                let record = match ctx.issued_ts() {
                    Some(ts) => OpRecord::with_ts(label, r, ts),
                    None => OpRecord::new(label, r),
                };
                let node = &mut self.replicas[idx];
                let op = self.history.push_set(record, node.member.seen().clone());
                node.clock = ctx.clock();
                self.next_uid = ctx.uid_counter();
                if let Some(eff) = &eff {
                    self.crdt.apply(&mut node.state, eff);
                }
                node.member.observe(op);
                let clock = node.clock;
                // Appending to the shared pool IS the broadcast: every other
                // replica's mailbox cursor lies at or below the new id.
                self.records.push(DeliveryRecord {
                    op,
                    eff,
                    clock,
                    meta: (),
                });
                Some(Invoked { ret, op })
            }
        }
    }

    /// Operations whose effector is deliverable at replica `r` under causal
    /// delivery: not yet applied there, with every visible predecessor
    /// already applied. Empty while the replica is crashed.
    pub fn deliverable(&self, r: ReplicaId) -> Vec<usize> {
        let mut out = Vec::new();
        self.deliverable_into(r, &mut out);
        out
    }

    /// [`Cluster::deliverable`] into a caller-owned scratch buffer (cleared
    /// first) — the allocation-free form the schedule drivers probe with on
    /// every delivery step.
    pub fn deliverable_into(&self, r: ReplicaId, out: &mut Vec<usize>) {
        out.clear();
        let node = &self.replicas[r.0 as usize];
        if !node.member.is_up() {
            return;
        }
        for d in node.mailbox.pending(self.records.len()) {
            let rec = &self.records[d];
            if !node.member.has_seen(rec.op)
                && causally_admitted(&node.member, rec.op, &self.history)
            {
                out.push(d);
            }
        }
    }

    /// Delivers pending effector `delivery` (an index into the deliverable
    /// pool) at replica `r` (the EFFECTOR rule).
    ///
    /// # Panics
    ///
    /// Panics if the effector was already applied at `r` or if causal
    /// delivery would be violated.
    pub fn deliver(&mut self, r: ReplicaId, delivery: usize) {
        let idx = r.0 as usize;
        let node = &mut self.replicas[idx];
        node.member.expect_up("deliver at", r);
        let rec = &self.records[delivery];
        assert!(
            !node.member.has_seen(rec.op),
            "effector of operation {} already applied at {r}",
            rec.op
        );
        assert!(
            causally_admitted(&node.member, rec.op, &self.history),
            "causal delivery violated: operation {} has undelivered predecessors at {r}",
            rec.op
        );
        if let Some(eff) = &rec.eff {
            self.crdt.apply(&mut node.state, eff);
        }
        node.clock = node.clock.max(rec.clock);
        node.member.observe(rec.op);
    }

    /// Handles a network arrival of delivery `d` at replica `r` with causal
    /// holdback: duplicates are ignored, out-of-order (or crashed-target)
    /// arrivals are buffered in the replica's mailbox, and an in-order
    /// arrival is applied together with every held delivery it unblocks.
    pub fn receive(&mut self, r: ReplicaId, d: usize) -> Received {
        let idx = r.0 as usize;
        if self.is_delivered(d, r) {
            return Received::Ignored;
        }
        if !self.can_deliver(r, d) {
            self.replicas[idx].mailbox.hold(d);
            return Received::Held;
        }
        self.deliver(r, d);
        let mut applied = 1;
        let mut held = self.replicas[idx].mailbox.take_held();
        while let Some(pos) = held.iter().position(|&h| self.can_deliver(r, h)) {
            let h = held.swap_remove(pos);
            self.deliver(r, h);
            applied += 1;
        }
        self.replicas[idx].mailbox.restore_held(held);
        Received::Applied(applied)
    }

    /// Delivers every pending effector everywhere, respecting causal order.
    ///
    /// One ascending mailbox pass per replica — complete without a fixpoint
    /// loop (see [`crate::mailbox`]) — with the per-replica drains sharded
    /// across the configured executor.
    pub fn deliver_all(&mut self) {
        self.deliver_all_counting();
    }

    /// [`Cluster::deliver_all`], then reports each replica's updated
    /// seen-frontier (first unseen operation id) to `observe` — the hook a
    /// streaming RA-linearizability monitor uses to learn causal stability
    /// from mailbox drains. Replicas are reported in ascending id order
    /// regardless of how the executor sharded the drain, so observers see
    /// a deterministic stream.
    pub fn deliver_all_observed(&mut self, mut observe: impl FnMut(ReplicaId, usize)) {
        self.deliver_all_counting();
        for (i, node) in self.replicas.iter().enumerate() {
            observe(ReplicaId(i as u32), node.member.frontier());
        }
    }

    /// Replica `r`'s seen-frontier: the first operation id whose effector
    /// it has *not* applied (its own operations count as applied).
    pub fn seen_frontier(&self, r: ReplicaId) -> usize {
        self.replicas[r.0 as usize].member.frontier()
    }

    /// [`Cluster::deliver_all`], returning the number of deliverability
    /// probes performed — the regression hook pinning the drain's linearity
    /// (at most one probe per outstanding (record, replica) pair per
    /// drain). Deliberately not `pub`: an implementation detail, not an
    /// API contract.
    fn deliver_all_counting(&mut self) -> u64 {
        let _span = obs::span("runtime.deliver_all");
        obs::counter("runtime.deliver_rounds", 1);
        let total = self.records.len();
        let depth: usize = self.replicas.iter().map(|n| n.mailbox.depth(total)).sum();
        let crdt = &self.crdt;
        let history = &self.history;
        let records = &self.records;
        let (stats, report) = exec::for_each_replica(&self.exec, &mut self.replicas, |_, node| {
            drain_node(crdt, history, records, node)
        });
        let applied: u64 = stats.iter().map(|s| s.applied).sum();
        if applied > 0 {
            obs::counter("runtime.deliveries", applied);
        }
        mailbox::record_drain(&OP_DRAIN_OBS, depth, &stats, &report);
        stats.iter().map(|s| s.probes).sum()
    }

    /// Returns `true` if all replicas are in the same state (strong eventual
    /// consistency requires this once every effector is delivered).
    pub fn converged(&self) -> bool {
        self.replicas.windows(2).all(|w| w[0].state == w[1].state)
    }

    /// The history index of pending delivery `d`.
    pub fn delivery_op(&self, d: usize) -> usize {
        self.records[d].op
    }

    /// The effector payload of pending delivery `d` (`None` for queries).
    pub fn delivery_eff(&self, d: usize) -> Option<&C::Eff> {
        self.records[d].eff.as_ref()
    }

    /// Number of (replica, effector) deliveries still pending.
    pub fn pending(&self) -> usize {
        self.replicas
            .iter()
            .map(|n| {
                n.mailbox
                    .pending(self.records.len())
                    .filter(|&d| !n.member.has_seen(self.records[d].op))
                    .count()
            })
            .sum()
    }

    /// Total number of deliveries created so far (one per successful
    /// invocation). Delivery ids are dense: `0..n_deliveries()`.
    pub fn n_deliveries(&self) -> usize {
        self.records.len()
    }

    /// Whether delivery `d` has already been applied at replica `r` —
    /// equivalently, whether the operation it replicates is in the
    /// replica's seen-set (origins count as applied).
    pub fn is_delivered(&self, d: usize, r: ReplicaId) -> bool {
        self.replicas[r.0 as usize]
            .member
            .has_seen(self.records[d].op)
    }

    /// Non-panicking probe for [`Cluster::deliver`]: `true` iff the replica
    /// is up, the effector has not been applied there, and causal delivery
    /// admits it now.
    pub fn can_deliver(&self, r: ReplicaId, d: usize) -> bool {
        let node = &self.replicas[r.0 as usize];
        let rec = &self.records[d];
        node.member.is_up()
            && !node.member.has_seen(rec.op)
            && causally_admitted(&node.member, rec.op, &self.history)
    }

    /// Whether replica `r` is running (not crashed).
    pub fn is_up(&self, r: ReplicaId) -> bool {
        self.replicas[r.0 as usize].member.is_up()
    }

    /// Crashes replica `r`: the process halts, refusing invocations and
    /// deliveries. Its state, applied set, and clock are durable; pending
    /// effectors addressed to it stay queued in its mailbox and become
    /// deliverable again after [`Cluster::restart`].
    pub fn crash(&mut self, r: ReplicaId) {
        self.replicas[r.0 as usize].member.crash();
    }

    /// Restarts a crashed replica; it resumes exactly where it halted.
    pub fn restart(&mut self, r: ReplicaId) {
        self.replicas[r.0 as usize].member.restart();
    }

    /// Restarts every crashed replica.
    pub fn restart_all(&mut self) {
        for node in &mut self.replicas {
            node.member.restart();
        }
    }
}

/// Causal deliverability of `op` at a member. Every predecessor of `op` has
/// a smaller history index, so a member whose seen
/// [`frontier`](Member::frontier) has reached `op` admits it without
/// touching the pred set — the O(1) path steady-state drains always take;
/// a seen-set with holes pays the exact subset check. Both tiers decide
/// identically.
fn causally_admitted<L>(member: &Member, op: usize, history: &History<L>) -> bool {
    op <= member.frontier() || history.preds(op).is_subset(member.seen())
}

/// Drains one replica's mailbox: a single ascending pass, compacting
/// survivors in place (zero allocation). Reads only shared immutable data
/// and writes only `node` — the property the executor's parallelism rests
/// on.
fn drain_node<C: OpBased>(
    crdt: &C,
    history: &History<C::Label>,
    records: &[DeliveryRecord<C::Eff>],
    node: &mut ReplicaNode<C::State>,
) -> DrainStats {
    let mut stats = DrainStats::default();
    if !node.member.is_up() {
        // Crashed replicas keep their backlog for after restart.
        return stats;
    }
    // Blocked backlog first, then the unexamined pool suffix — backlog ids
    // all precede the cursor, so the whole pass is ascending.
    let mut backlog = node.mailbox.take_backlog();
    let mut write = 0;
    for read in 0..backlog.len() {
        let d = backlog[read];
        let rec = &records[d];
        if node.member.has_seen(rec.op) {
            continue; // applied earlier through a targeted deliver
        }
        stats.probes += 1;
        if causally_admitted(&node.member, rec.op, history) {
            if let Some(eff) = &rec.eff {
                crdt.apply(&mut node.state, eff);
            }
            node.clock = node.clock.max(rec.clock);
            node.member.observe(rec.op);
            stats.applied += 1;
        } else {
            backlog[write] = d;
            write += 1;
        }
    }
    backlog.truncate(write);
    for (d, rec) in records.iter().enumerate().skip(node.mailbox.cursor()) {
        if node.member.has_seen(rec.op) {
            continue; // own operation, or applied through a targeted deliver
        }
        stats.probes += 1;
        if causally_admitted(&node.member, rec.op, history) {
            if let Some(eff) = &rec.eff {
                crdt.apply(&mut node.state, eff);
            }
            node.clock = node.clock.max(rec.clock);
            node.member.observe(rec.op);
            stats.applied += 1;
        } else {
            backlog.push(d);
        }
    }
    node.mailbox.advance_cursor(records.len());
    node.mailbox.restore_backlog(backlog);
    let member = &node.member;
    node.mailbox
        .prune_held(|&id| !member.has_seen(records[id].op));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecMode;

    /// An add-only set used to exercise the cluster plumbing.
    struct GSet;

    impl OpBased for GSet {
        type State = Vec<u32>;
        type Call = Call;
        type Ret = Vec<u32>;
        type Eff = u32;
        type Label = Call;

        fn initial(&self) -> Vec<u32> {
            Vec::new()
        }

        fn generator(
            &self,
            state: &Vec<u32>,
            call: &Call,
            _ctx: &mut GenCtx,
        ) -> GenOutcome<Vec<u32>, u32> {
            match call {
                Call::Add(x) => GenOutcome::update(Vec::new(), *x),
                Call::Read => GenOutcome::query(state.clone()),
            }
        }

        fn apply(&self, state: &mut Vec<u32>, eff: &u32) {
            if !state.contains(eff) {
                state.push(*eff);
                state.sort_unstable();
            }
        }

        fn label(&self, call: &Call, _ret: &Vec<u32>) -> Call {
            call.clone()
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum Call {
        Add(u32),
        Read,
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn origin_applies_immediately() {
        let mut c = Cluster::new(GSet, 3);
        c.invoke(r(0), Call::Add(7)).unwrap();
        assert_eq!(c.state(r(0)), &vec![7]);
        assert_eq!(c.state(r(1)), &Vec::<u32>::new());
    }

    #[test]
    fn delivery_propagates() {
        let mut c = Cluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        assert_eq!(c.pending(), 1);
        let ds = c.deliverable(r(1));
        assert_eq!(ds.len(), 1);
        c.deliver(r(1), ds[0]);
        assert_eq!(c.state(r(1)), &vec![1]);
        assert_eq!(c.pending(), 0);
        assert!(c.converged());
    }

    #[test]
    fn causal_delivery_orders_dependent_effectors() {
        let mut c = Cluster::new(GSet, 2);
        let a = c.invoke(r(0), Call::Add(1)).unwrap();
        let b = c.invoke(r(0), Call::Add(2)).unwrap();
        // b sees a, so at r1 only a is deliverable first.
        assert_eq!(c.deliverable(r(1)).len(), 1);
        let first = c.deliverable(r(1))[0];
        assert_eq!(c.delivery_op(first), a.op);
        c.deliver(r(1), first);
        let second = c.deliverable(r(1))[0];
        assert_eq!(c.delivery_op(second), b.op);
        c.deliver(r(1), second);
        assert!(c.converged());
    }

    #[test]
    #[should_panic(expected = "causal delivery violated")]
    fn out_of_order_delivery_panics() {
        let mut c = Cluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        c.invoke(r(0), Call::Add(2)).unwrap();
        // Delivery 1 is the second op; its predecessor hasn't been applied.
        c.deliver(r(1), 1);
    }

    #[test]
    #[should_panic(expected = "already applied")]
    fn double_delivery_panics() {
        let mut c = Cluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        c.deliver(r(1), 0);
        c.deliver(r(1), 0);
    }

    #[test]
    fn history_records_visibility() {
        let mut c = Cluster::new(GSet, 2);
        let a = c.invoke(r(0), Call::Add(1)).unwrap();
        let b = c.invoke(r(1), Call::Add(2)).unwrap();
        c.deliver_all();
        let q = c.invoke(r(1), Call::Read).unwrap();
        assert_eq!(q.ret, vec![1, 2]);
        let h = c.history();
        assert!(h.concurrent(a.op, b.op));
        assert!(h.sees(q.op, a.op));
        assert!(h.sees(q.op, b.op));
        assert!(h.is_transitive());
    }

    #[test]
    fn queries_enter_visibility() {
        // A query generates an identity effector; once delivered it becomes
        // visible to later operations at that replica.
        let mut c = Cluster::new(GSet, 2);
        let q = c.invoke(r(0), Call::Read).unwrap();
        c.deliver_all();
        let b = c.invoke(r(1), Call::Add(2)).unwrap();
        assert!(c.history().sees(b.op, q.op));
    }

    #[test]
    fn deliver_all_converges() {
        let mut c = Cluster::new(GSet, 4);
        for i in 0..4 {
            c.invoke(r(i), Call::Add(i)).unwrap();
        }
        assert!(!c.converged());
        c.deliver_all();
        assert!(c.converged());
        assert_eq!(c.state(r(0)), &vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_cluster_panics() {
        let _ = Cluster::new(GSet, 0);
    }

    #[test]
    fn can_deliver_mirrors_deliver_preconditions() {
        let mut c = Cluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        c.invoke(r(0), Call::Add(2)).unwrap();
        assert_eq!(c.n_deliveries(), 2);
        assert!(c.is_delivered(0, r(0)), "origin applied immediately");
        assert!(c.can_deliver(r(1), 0));
        assert!(!c.can_deliver(r(1), 1), "predecessor not applied yet");
        c.deliver(r(1), 0);
        assert!(!c.can_deliver(r(1), 0), "already applied");
        assert!(c.can_deliver(r(1), 1));
    }

    #[test]
    fn crashed_replica_buffers_and_redelivers() {
        let mut c = Cluster::new(GSet, 2);
        c.crash(r(1));
        assert!(!c.is_up(r(1)));
        c.invoke(r(0), Call::Add(1)).unwrap();
        // The crashed replica refuses delivery; the effector stays pending.
        assert!(c.deliverable(r(1)).is_empty());
        assert!(!c.can_deliver(r(1), 0));
        c.deliver_all();
        assert_eq!(c.pending(), 1, "effector buffered for the crashed node");
        // Durable state: after restart the effector is re-delivered.
        c.restart_all();
        c.deliver_all();
        assert_eq!(c.pending(), 0);
        assert!(c.converged());
    }

    #[test]
    #[should_panic(expected = "cannot invoke at crashed replica")]
    fn invoking_at_crashed_replica_panics() {
        let mut c = Cluster::new(GSet, 2);
        c.crash(r(0));
        c.invoke(r(0), Call::Add(1));
    }

    #[test]
    fn receive_applies_holds_and_ignores() {
        let mut c = Cluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        c.invoke(r(0), Call::Add(2)).unwrap();
        // Out of order: the second effector arrives first and is held.
        assert_eq!(c.receive(r(1), 1), Received::Held);
        // The first unblocks the held one: two applied in one receive.
        assert_eq!(c.receive(r(1), 0), Received::Applied(2));
        // A duplicate of either is ignored.
        assert_eq!(c.receive(r(1), 1), Received::Ignored);
        assert!(c.converged());
    }

    #[test]
    fn deliver_all_probes_each_pending_pair_once() {
        // The mailbox drain is a single ascending pass: one deliverability
        // probe per outstanding (record, replica) pair, no fixpoint
        // rescans. (The seed-era drain recomputed `deliverable` from the
        // full record pool until quiescence: O(d²·|preds|).)
        let mut c = Cluster::new(GSet, 5);
        for i in 0..100u32 {
            c.invoke(r(i % 5), Call::Add(i)).unwrap();
        }
        let outstanding = c.pending() as u64;
        assert_eq!(outstanding, 100 * 4);
        let probes = c.deliver_all_counting();
        assert_eq!(
            probes, outstanding,
            "mailbox drain must probe each outstanding pair exactly once"
        );
        assert!(c.converged());
        // A drained cluster re-drains for free.
        assert_eq!(c.deliver_all_counting(), 0);
    }

    #[test]
    fn parallel_drain_matches_sequential_byte_for_byte() {
        let run = |exec: ExecConfig| {
            let mut c = Cluster::with_exec(GSet, 6, exec);
            for i in 0..120u32 {
                // r2 is down for the middle third of the run.
                if i == 60 {
                    c.crash(r(2));
                }
                if i == 90 {
                    c.restart(r(2));
                }
                if !(i % 6 == 2 && (60..90).contains(&i)) {
                    c.invoke(r(i % 6), Call::Add(i % 40)).unwrap();
                }
                if i % 13 == 5 {
                    c.deliver_all();
                }
            }
            c.restart_all();
            c.deliver_all();
            assert!(c.converged());
            format!("{:?}", c.into_history())
        };
        let baseline = run(ExecConfig::sequential());
        for exec in [
            ExecConfig::free(2),
            ExecConfig::free(8),
            ExecConfig {
                threads: 8,
                mode: ExecMode::Seeded(7),
            },
        ] {
            assert_eq!(run(exec), baseline, "{exec:?}: history drifted");
        }
    }
}
