//! Seeded random schedulers.
//!
//! Concurrency in the paper's semantics is *visibility* concurrency: which
//! operations had been delivered where when a generator ran. A scheduler
//! explores it by interleaving invocations with deliveries under a seeded
//! RNG, so every run — including every counterexample — is reproducible from
//! its seed.
//!
//! These helpers are untimed: they flip a weighted coin between "invoke" and
//! "deliver" with no notion of latency, links, or failures. Scenarios that
//! need virtual time, per-link latency distributions, message loss and
//! duplication, scheduled partitions, or replica crash/restart are driven by
//! the `ral-sim` discrete-event simulator, which builds on the same targeted
//! per-message entry points ([`Cluster::can_deliver`],
//! [`Cluster::deliver`], [`StateCluster::apply`], crash/restart) that these
//! wrappers consume.

use crate::multi::MultiCluster;
use crate::op_based::{Cluster, OpBased};
use crate::state_based::{StateBased, StateCluster};
use ral_core::ids::{ObjId, ReplicaId};
use ral_core::rng::Rng;

/// Knobs for a random schedule.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleConfig {
    /// Number of scheduler steps (each an invocation or a delivery attempt).
    pub steps: usize,
    /// Relative weight of invocation steps.
    pub invoke_weight: u32,
    /// Relative weight of delivery/merge steps.
    pub deliver_weight: u32,
    /// Whether to fully synchronize the cluster after the last step (so
    /// convergence can be asserted).
    pub final_sync: bool,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            steps: 60,
            invoke_weight: 2,
            deliver_weight: 1,
            final_sync: true,
        }
    }
}

fn pick_replica(rng: &mut Rng, n: usize) -> ReplicaId {
    ReplicaId(rng.random_range(0..n) as u32)
}

/// Drives an operation-based cluster through a random schedule.
///
/// `call_gen` produces the next invocation for a replica given its current
/// state (returning `None` to skip); the scheduler interleaves those
/// invocations with causal deliveries. Thin wrapper over
/// [`drive_op_based_filtered`] with every link admitted.
pub fn drive_op_based<C, F>(cluster: &mut Cluster<C>, cfg: &ScheduleConfig, seed: u64, call_gen: F)
where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    drive_op_based_filtered(cluster, cfg, seed, call_gen, |_, _| true);
}

/// Drives an operation-based cluster, delivering only along links the
/// `admit(origin, destination)` predicate allows — the common core of
/// [`drive_op_based`] (always `true`) and [`drive_op_based_partitioned`]
/// (same partition side). `admit` is consulted per delivery attempt, so a
/// caller can vary it over the run.
pub fn drive_op_based_filtered<C, F, P>(
    cluster: &mut Cluster<C>,
    cfg: &ScheduleConfig,
    seed: u64,
    mut call_gen: F,
    mut admit: P,
) where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
    P: FnMut(ReplicaId, ReplicaId) -> bool,
{
    let mut rng = Rng::seed_from_u64(seed);
    let total = cfg.invoke_weight + cfg.deliver_weight;
    assert!(total > 0, "at least one action must have non-zero weight");
    // One scratch buffer for the whole schedule: `deliverable_into` refills
    // it in place, so delivery steps allocate nothing after warm-up.
    let mut ds: Vec<usize> = Vec::new();
    for _ in 0..cfg.steps {
        let r = pick_replica(&mut rng, cluster.n_replicas());
        if rng.random_range(0..total) < cfg.invoke_weight {
            if let Some(call) = call_gen(&mut rng, r, cluster.state(r)) {
                cluster.invoke(r, call);
            }
        } else {
            cluster.deliverable_into(r, &mut ds);
            ds.retain(|&d| {
                let origin = cluster.history().op(cluster.delivery_op(d)).replica;
                admit(origin, r)
            });
            if !ds.is_empty() {
                let d = ds[rng.random_range(0..ds.len())];
                cluster.deliver(r, d);
            }
        }
    }
    if cfg.final_sync {
        cluster.deliver_all();
    }
}

/// Drives a multi-object cluster through a random schedule; `call_gen` also
/// receives the target object.
pub fn drive_multi<C, F>(
    cluster: &mut MultiCluster<C>,
    cfg: &ScheduleConfig,
    seed: u64,
    mut call_gen: F,
) where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, ObjId, &C::State) -> Option<C::Call>,
{
    let mut rng = Rng::seed_from_u64(seed);
    let total = cfg.invoke_weight + cfg.deliver_weight;
    assert!(total > 0, "at least one action must have non-zero weight");
    let mut ds: Vec<usize> = Vec::new();
    for _ in 0..cfg.steps {
        let r = pick_replica(&mut rng, cluster.n_replicas());
        if rng.random_range(0..total) < cfg.invoke_weight {
            let obj = ObjId(rng.random_range(0..cluster.n_objects()) as u32);
            if let Some(call) = call_gen(&mut rng, r, obj, cluster.state(r, obj)) {
                cluster.invoke(r, obj, call);
            }
        } else {
            cluster.deliverable_into(r, &mut ds);
            if !ds.is_empty() {
                let d = ds[rng.random_range(0..ds.len())];
                cluster.deliver(r, d);
            }
        }
    }
    if cfg.final_sync {
        cluster.deliver_all();
    }
}

/// Drives a state-based cluster: invocations, snapshot sends, and merge
/// applications (with duplication and reordering; loss happens implicitly by
/// never applying a message).
pub fn drive_state_based<C, F>(
    cluster: &mut StateCluster<C>,
    cfg: &ScheduleConfig,
    seed: u64,
    mut call_gen: F,
) where
    C: StateBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    let mut rng = Rng::seed_from_u64(seed);
    let total = cfg.invoke_weight + cfg.deliver_weight;
    assert!(total > 0, "at least one action must have non-zero weight");
    for _ in 0..cfg.steps {
        let r = pick_replica(&mut rng, cluster.n_replicas());
        if rng.random_range(0..total) < cfg.invoke_weight {
            if let Some(call) = call_gen(&mut rng, r, cluster.state(r)) {
                cluster.invoke(r, call);
            }
        } else if rng.random_bool(0.5) || cluster.n_messages() == 0 {
            cluster.send(r);
        } else {
            let m = rng.random_range(0..cluster.n_messages());
            cluster.apply(r, m);
        }
    }
    if cfg.final_sync {
        cluster.sync_all();
    }
}

/// A network partition: replicas are split into groups; effectors cross
/// group boundaries only after the partition heals.
///
/// This is the paper's motivating scenario (Section 1): CRDTs keep every
/// partition side available — generators never block — and reconcile
/// deterministically on healing.
#[derive(Clone, Debug)]
pub struct Partition {
    groups: Vec<u32>,
}

impl Partition {
    /// Creates a partition from a group id per replica.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is empty.
    pub fn new(groups: Vec<u32>) -> Self {
        assert!(!groups.is_empty(), "a partition needs at least one replica");
        Partition { groups }
    }

    /// Are `a` and `b` on the same side?
    pub fn connected(&self, a: ReplicaId, b: ReplicaId) -> bool {
        self.groups[a.0 as usize] == self.groups[b.0 as usize]
    }

    /// Number of replicas the grouping covers.
    pub fn n_replicas(&self) -> usize {
        self.groups.len()
    }
}

/// Drives an operation-based cluster with a partition in force for the
/// first `heal_after` steps: deliveries whose origin lies across the
/// partition are withheld. After the last step the partition heals and
/// everything is delivered.
pub fn drive_op_based_partitioned<C, F>(
    cluster: &mut Cluster<C>,
    cfg: &ScheduleConfig,
    partition: &Partition,
    seed: u64,
    call_gen: F,
) where
    C: OpBased,
    F: FnMut(&mut Rng, ReplicaId, &C::State) -> Option<C::Call>,
{
    // Thin wrapper: the final deliver_all is the partition healing.
    drive_op_based_filtered(cluster, cfg, seed, call_gen, |origin, dest| {
        partition.connected(origin, dest)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenCtx, GenOutcome};
    use crate::multi::TsMode;
    use crate::state_based::StateOutcome;

    struct GCtr;

    impl OpBased for GCtr {
        type State = i64;
        type Call = bool; // true = inc, false = read
        type Ret = i64;
        type Eff = ();
        type Label = (bool, i64);
        fn initial(&self) -> i64 {
            0
        }
        fn generator(&self, st: &i64, call: &bool, _ctx: &mut GenCtx) -> GenOutcome<i64, ()> {
            if *call {
                GenOutcome::update(0, ())
            } else {
                GenOutcome::query(*st)
            }
        }
        fn apply(&self, st: &mut i64, _eff: &()) {
            *st += 1;
        }
        fn label(&self, call: &bool, ret: &i64) -> (bool, i64) {
            (*call, *ret)
        }
    }

    impl StateBased for GCtr {
        type State = Vec<i64>;
        type Call = bool;
        type Ret = i64;
        type Label = (bool, i64);
        fn initial(&self, n: usize) -> Vec<i64> {
            vec![0; n]
        }
        fn invoke(
            &self,
            st: &Vec<i64>,
            call: &bool,
            ctx: &mut GenCtx,
        ) -> StateOutcome<i64, Vec<i64>> {
            if *call {
                let mut next = st.clone();
                next[ctx.replica().0 as usize] += 1;
                StateOutcome::Done { ret: 0, next }
            } else {
                StateOutcome::Done {
                    ret: st.iter().sum(),
                    next: st.clone(),
                }
            }
        }
        fn merge(&self, a: &Vec<i64>, b: &Vec<i64>) -> Vec<i64> {
            a.iter().zip(b).map(|(x, y)| *x.max(y)).collect()
        }
        fn leq(&self, a: &Vec<i64>, b: &Vec<i64>) -> bool {
            a.iter().zip(b).all(|(x, y)| x <= y)
        }
        fn label(&self, call: &bool, ret: &i64) -> (bool, i64) {
            (*call, *ret)
        }
    }

    #[test]
    fn op_based_schedule_is_deterministic_and_converges() {
        let run = |seed| {
            let mut c = Cluster::new(GCtr, 3);
            drive_op_based(&mut c, &ScheduleConfig::default(), seed, |rng, _, _| {
                Some(rng.random_bool(0.7))
            });
            assert!(c.converged());
            (c.history().len(), *c.state(ReplicaId(0)))
        };
        assert_eq!(run(42), run(42));
        // With ~42 invocations, two different seeds almost surely differ.
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn multi_schedule_converges() {
        let mut c = MultiCluster::new(GCtr, 2, 3, TsMode::Shared);
        drive_multi(&mut c, &ScheduleConfig::default(), 7, |_, _, _, _| {
            Some(true)
        });
        assert!(c.converged());
    }

    #[test]
    fn state_based_schedule_converges() {
        let mut c = StateCluster::new(GCtr, 3);
        drive_state_based(&mut c, &ScheduleConfig::default(), 11, |rng, _, _| {
            Some(rng.random_bool(0.6))
        });
        assert!(c.converged());
        assert!(c.check_lattice_laws());
    }
}
