//! Per-replica mailboxes and the shared delivery-record pool.
//!
//! Every broadcast transport ([`Cluster`](crate::op_based::Cluster),
//! [`MultiCluster`](crate::multi::MultiCluster)) follows the same shape: an
//! invocation appends one immutable [`DeliveryRecord`] to a cluster-wide
//! pool, and because every record is addressed to *every* other replica, a
//! replica's inbound queue is just a suffix of that pool — each [`Mailbox`]
//! tracks a `cursor` (the first pool id no drain of this replica has
//! examined yet) instead of materializing per-replica queues, so an
//! invocation broadcasts in O(1) without touching any other replica's
//! memory. Delivery then happens replica-locally: a drain walks the blocked
//! `backlog` and then the pool from the cursor up, in ascending id order,
//! applies whatever causal delivery admits, and keeps the rest in the
//! backlog. Because record ids ascend with operation ids and every causal
//! predecessor of a record has a smaller id, **one ascending pass reaches
//! the fixpoint** — no retry loop — and because a drain writes nothing but
//! its own replica's node, drains for different replicas can run on
//! different worker threads (see [`crate::exec`]) without changing a single
//! byte of any history or trace.
//!
//! The pending set is pruned lazily: whether an id is still pending is
//! decided by the replica's seen-set (see [`crate::membership::Member`]),
//! never by per-record flags — own-origin records and targeted deliveries
//! are simply skipped as already seen — so broadcasting, draining, and
//! targeted delivery all agree by construction.

use ral_obs as obs;

use crate::exec::ExecReport;

/// One replicated effector, broadcast at invoke time and applied at most
/// once per replica.
///
/// Records are immutable after creation — all delivery state lives in the
/// receiving replica's seen-set. `M` carries transport-specific metadata
/// (`()` for the single-object cluster; the object id for the composed
/// one).
#[derive(Clone, Debug)]
pub struct DeliveryRecord<E, M = ()> {
    /// History index of the operation this record replicates.
    pub op: usize,
    /// Effector payload; `None` for queries (identity effectors).
    pub eff: Option<E>,
    /// The origin replica's Lamport clock right after the generator ran;
    /// receivers take the max, so clocks propagate even through identity
    /// effectors (the paper's monotone-counter requirement, Section 5.3).
    pub clock: u64,
    /// Transport-specific metadata.
    pub meta: M,
}

/// A replica's view of its inbound deliveries.
///
/// `cursor` marks the prefix of the shared record pool this replica's
/// drains have already examined; everything at or above it is implicitly
/// queued (broadcast is O(1): appending to the pool addresses everyone).
/// `backlog` holds examined-but-blocked ids — records below the cursor
/// whose causal predecessors were missing at drain time — kept ascending.
/// `held` buffers out-of-order network arrivals: ids a simulator handed to
/// [`receive`](crate::op_based::Cluster::receive) before causal delivery
/// admitted them.
#[derive(Clone, Debug, Default)]
pub struct Mailbox {
    cursor: usize,
    backlog: Vec<usize>,
    held: Vec<usize>,
}

impl Mailbox {
    /// An empty mailbox with its cursor at the start of the pool.
    pub fn new() -> Self {
        Mailbox::default()
    }

    /// The pending candidate ids given the pool size `total`: the blocked
    /// backlog first, then every unexamined id from the cursor up —
    /// ascending overall, since backlog ids all precede the cursor. May
    /// include ids the replica has already applied (its own operations, or
    /// targeted delivers) — callers filter against the seen-set.
    pub fn pending(&self, total: usize) -> impl Iterator<Item = usize> + '_ {
        self.backlog.iter().copied().chain(self.cursor..total)
    }

    /// Pending-candidate count (including lazily-pruned ids) given the pool
    /// size `total`; the pre-drain mailbox depth the obs layer reports.
    pub fn depth(&self, total: usize) -> usize {
        self.backlog.len() + (total - self.cursor)
    }

    /// The first pool id no drain of this replica has examined yet.
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Marks the pool prefix below `to` as examined (a drain walked it;
    /// whatever it could not apply went to the backlog).
    pub fn advance_cursor(&mut self, to: usize) {
        debug_assert!(to >= self.cursor, "cursor moved backwards");
        self.cursor = to;
    }

    /// Moves the backlog out for an in-place drain (zero allocation); the
    /// drain compacts survivors and hands the buffer back via
    /// [`Mailbox::restore_backlog`].
    pub fn take_backlog(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.backlog)
    }

    /// Returns the (compacted) backlog buffer after a drain.
    pub fn restore_backlog(&mut self, backlog: Vec<usize>) {
        debug_assert!(self.backlog.is_empty(), "restore over a non-empty backlog");
        self.backlog = backlog;
    }

    /// Buffers an out-of-order arrival for later causal re-examination.
    pub fn hold(&mut self, id: usize) {
        self.held.push(id);
    }

    /// The held (out-of-order) arrivals, in arrival order.
    pub fn held(&self) -> &[usize] {
        &self.held
    }

    /// Moves the held buffer out for a holdback drain (the swap-remove scan
    /// the sim drivers have always used); hand it back via
    /// [`Mailbox::restore_held`].
    pub fn take_held(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.held)
    }

    /// Returns the held buffer after a holdback drain.
    pub fn restore_held(&mut self, held: Vec<usize>) {
        debug_assert!(self.held.is_empty(), "restore over a non-empty holdback");
        self.held = held;
    }

    /// Drops held entries that no longer need holding (`keep` is typically
    /// "not yet seen"). Removal preserves order and only ever drops
    /// undeliverable-as-held entries, so holdback scans are unaffected.
    pub fn prune_held(&mut self, keep: impl FnMut(&usize) -> bool) {
        let mut keep = keep;
        self.held.retain(|id| keep(id));
    }
}

/// What one replica's drain did: how many pool entries it probed for
/// deliverability and how many effectors it applied. The probe count is the
/// complexity witness regression tests pin (one probe per pending pair, no
/// fixpoint re-scans); the applied count feeds the obs batch metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Deliverability checks performed.
    pub probes: u64,
    /// Effectors applied.
    pub applied: u64,
}

/// Obs metric names for one transport's drain (names must be `'static` for
/// the recorder).
pub(crate) struct DrainObs {
    /// Histogram: total pending candidates across all mailboxes before the
    /// drain.
    pub depth: &'static str,
    /// Histogram: effectors applied by this drain (the batch size).
    pub batch: &'static str,
    /// Keyed counter: effectors applied per executor worker.
    pub per_worker: &'static str,
}

/// Records one drain's mailbox metrics, on the caller thread, after the
/// executor has joined — obs stays inert and its event order deterministic
/// no matter how many workers ran.
pub(crate) fn record_drain(names: &DrainObs, depth: usize, stats: &[DrainStats], rep: &ExecReport) {
    obs::observe(names.depth, depth as u64);
    let applied: u64 = stats.iter().map(|s| s.applied).sum();
    obs::observe(names.batch, applied);
    let mut start = 0;
    for (worker, &size) in rep.shard_sizes.iter().enumerate() {
        let shard: u64 = stats[start..start + size].iter().map(|s| s.applied).sum();
        obs::counter_keyed(names.per_worker, worker as u64, shard);
        start += size;
    }
}

/// How a driver's `receive` handled an inbound message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Received {
    /// Applied now; the count includes any held messages it unblocked.
    Applied(usize),
    /// Buffered for causal holdback (delivering now would violate causal
    /// order, or the replica is down).
    Held,
    /// A duplicate of something already applied; dropped.
    Ignored,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_mailbox_sees_the_whole_pool_as_pending() {
        let mb = Mailbox::new();
        assert_eq!(mb.cursor(), 0);
        assert_eq!(mb.pending(3).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(mb.depth(3), 3);
    }

    #[test]
    fn backlog_precedes_the_unexamined_suffix_and_stays_ascending() {
        let mut mb = Mailbox::new();
        let mut backlog = mb.take_backlog();
        backlog.push(1); // blocked below the cursor
        mb.restore_backlog(backlog);
        mb.advance_cursor(4);
        assert_eq!(mb.pending(6).collect::<Vec<_>>(), vec![1, 4, 5]);
        assert_eq!(mb.depth(6), 3);
    }

    #[test]
    fn take_and_restore_backlog_round_trip_without_realloc() {
        let mut mb = Mailbox::new();
        let mut b = mb.take_backlog();
        b.push(1);
        b.push(2);
        mb.restore_backlog(b);
        let mut b = mb.take_backlog();
        assert_eq!(mb.depth(0), 0);
        let cap = b.capacity();
        b.clear();
        b.push(2);
        mb.restore_backlog(b);
        assert_eq!(mb.pending(0).collect::<Vec<_>>(), vec![2]);
        assert!(mb.take_backlog().capacity() >= cap);
    }

    #[test]
    fn holdback_buffer_is_separate_and_prunable() {
        let mut mb = Mailbox::new();
        mb.hold(9);
        mb.hold(5);
        assert_eq!(mb.held(), &[9, 5]);
        mb.prune_held(|&id| id != 5);
        assert_eq!(mb.held(), &[9]);
        assert_eq!(mb.cursor(), 0, "pruning held leaves the cursor alone");
    }
}
