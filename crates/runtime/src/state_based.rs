//! State-based CRDT objects and their replicated execution (Appendix D).
//!
//! In a state-based CRDT every method executes locally at the origin; instead
//! of effectors, replicas exchange whole states. Replica states form a join
//! semilattice; `merge` is the least upper bound and `leq` ("compare") the
//! lattice order. The network offers **no** guarantees: a message may be
//! applied several times, at any subset of replicas, in any order, or never
//! (Appendix D.2) — convergence must come from the lattice laws alone.
//!
//! Liveness and visibility bookkeeping live in the shared
//! [`Member`]; [`StateCluster::sync_all`]'s
//! apply phase runs replica-parallel on the configured
//! [`exec`] workers (a merge mutates only the receiving node
//! while reading the immutable message log, so per-replica outcomes are
//! thread-count-invariant by construction).

use crate::exec::{self, ExecConfig};
use crate::gen::GenCtx;
use crate::membership::Member;
use ral_core::bitset::BitSet;
use ral_core::history::{History, OpRecord};
use ral_core::ids::ReplicaId;
use ral_obs as obs;
use std::fmt::Debug;

/// The result of invoking a method on a state-based CRDT.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateOutcome<R, S> {
    /// The method executed, returning `ret` and moving the replica to
    /// `next`.
    Done {
        /// Return value.
        ret: R,
        /// New replica state (equal to the old one for queries).
        next: S,
    },
    /// The method's precondition does not hold.
    Refused,
}

/// A state-based CRDT, in the style of Listings 7–10.
///
/// The `Send + Sync` bounds exist for the sharded executor: `sync_all`'s
/// apply phase may merge on worker threads, which share the descriptor and
/// the message log immutably. Every shipped CRDT is plain data, so the
/// bounds cost nothing.
pub trait StateBased: Sync {
    /// Replica state; the carrier of the join semilattice.
    type State: Clone + Debug + PartialEq + Send + Sync;
    /// A method invocation: name plus arguments.
    type Call: Clone + Debug;
    /// Return values.
    type Ret: Clone + Debug + PartialEq;
    /// Operation labels `m(a) ⇒ b`.
    type Label: Clone + Debug;

    /// The initial replica state. Vector-clock based types (MV-Register,
    /// PN-Counter) size their payload by `n_replicas`.
    fn initial(&self, n_replicas: usize) -> Self::State;

    /// Executes `call` locally at the origin replica.
    fn invoke(
        &self,
        state: &Self::State,
        call: &Self::Call,
        ctx: &mut GenCtx,
    ) -> StateOutcome<Self::Ret, Self::State>;

    /// The least upper bound of two replica states.
    fn merge(&self, a: &Self::State, b: &Self::State) -> Self::State;

    /// The lattice order (`compare` in the listings): `a ⊑ b`.
    fn leq(&self, a: &Self::State, b: &Self::State) -> bool;

    /// The label of an invocation that returned `ret`.
    fn label(&self, call: &Self::Call, ret: &Self::Ret) -> Self::Label;

    /// The largest timestamp counter stored in `state`, used to keep Lamport
    /// clocks ahead of merged-in timestamps. Types without timestamps keep
    /// the default.
    fn clock_floor(&self, _state: &Self::State) -> u64 {
        0
    }
}

#[derive(Clone)]
struct StateNode<S> {
    state: S,
    // Liveness + seen-set.
    member: Member,
    clock: u64,
    // Last durable checkpoint `(state, seen, clock)`. Local invocations are
    // written ahead (invoke re-checkpoints automatically), so a crash can
    // only lose *merged-in* remote knowledge — which the unreliable network
    // may re-merge at any time, making the loss indistinguishable from a
    // dropped message (Appendix D.2).
    durable: (S, BitSet, u64),
}

/// A snapshot message: the sending replica's state plus the set of
/// operations it reflects (the label set `L` of Appendix D.2, used to extract
/// visibility).
#[derive(Clone, Debug)]
pub struct Message<S> {
    seen: BitSet,
    state: S,
    clock: u64,
    origin: ReplicaId,
}

/// A successful invocation on a [`StateCluster`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invoked<R> {
    /// Return value.
    pub ret: R,
    /// Index of the operation in the cluster's history.
    pub op: usize,
}

/// A cluster of replicas of one state-based object.
///
/// # Examples
///
/// Local updates stay local until a snapshot message is applied, and
/// duplicate deliveries are absorbed by the merge:
///
/// ```
/// use ral_core::ids::ReplicaId;
/// use ral_runtime::state_based::StateCluster;
/// # use ral_runtime::gen::GenCtx;
/// # use ral_runtime::state_based::{StateBased, StateOutcome};
/// # #[derive(Clone)]
/// # struct GSet;
/// # impl StateBased for GSet {
/// #     type State = Vec<u32>;
/// #     type Call = u32;
/// #     type Ret = ();
/// #     type Label = u32;
/// #     fn initial(&self, _n: usize) -> Vec<u32> { Vec::new() }
/// #     fn invoke(&self, st: &Vec<u32>, c: &u32, _ctx: &mut GenCtx) -> StateOutcome<(), Vec<u32>> {
/// #         let mut next = st.clone();
/// #         if !next.contains(c) { next.push(*c); next.sort_unstable(); }
/// #         StateOutcome::Done { ret: (), next }
/// #     }
/// #     fn merge(&self, a: &Vec<u32>, b: &Vec<u32>) -> Vec<u32> {
/// #         let mut out = a.clone();
/// #         out.extend(b.iter().copied().filter(|x| !a.contains(x)));
/// #         out.sort_unstable();
/// #         out
/// #     }
/// #     fn leq(&self, a: &Vec<u32>, b: &Vec<u32>) -> bool { a.iter().all(|x| b.contains(x)) }
/// #     fn label(&self, c: &u32, _r: &()) -> u32 { *c }
/// # }
///
/// let mut cluster = StateCluster::new(GSet, 2);
/// cluster.invoke(ReplicaId(0), 7).unwrap();
/// assert_eq!(cluster.state(ReplicaId(1)), &Vec::<u32>::new());
/// let msg = cluster.send(ReplicaId(0));
/// cluster.apply(ReplicaId(1), msg);
/// cluster.apply(ReplicaId(1), msg); // duplicate delivery is harmless
/// assert_eq!(cluster.state(ReplicaId(1)), &vec![7]);
/// ```
// Cloning forks the whole configuration (replica states, in-flight
// messages, history) — the branch point of `ral-analyze`'s search.
#[derive(Clone)]
pub struct StateCluster<C: StateBased> {
    crdt: C,
    replicas: Vec<StateNode<C::State>>,
    messages: Vec<Message<C::State>>,
    history: History<C::Label>,
    next_uid: u64,
    exec: ExecConfig,
}

impl<C: StateBased> StateCluster<C> {
    /// Creates a cluster of `n_replicas` replicas in the initial state,
    /// with the executor `RAL_RUNTIME_THREADS` configures (sequential when
    /// unset).
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn new(crdt: C, n_replicas: usize) -> Self {
        StateCluster::with_exec(crdt, n_replicas, ExecConfig::from_env())
    }

    /// [`StateCluster::new`] with an explicit executor configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` is zero.
    pub fn with_exec(crdt: C, n_replicas: usize, exec: ExecConfig) -> Self {
        assert!(n_replicas > 0, "a cluster needs at least one replica");
        let replicas = (0..n_replicas)
            .map(|_| StateNode {
                state: crdt.initial(n_replicas),
                member: Member::new(),
                clock: 0,
                durable: (crdt.initial(n_replicas), BitSet::new(), 0),
            })
            .collect();
        StateCluster {
            crdt,
            replicas,
            messages: Vec::new(),
            history: History::new(),
            next_uid: 0,
            exec,
        }
    }

    /// Replaces the executor configuration (sync semantics are
    /// executor-invariant; this changes only how apply phases are
    /// scheduled).
    pub fn set_exec(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The CRDT descriptor.
    pub fn crdt(&self) -> &C {
        &self.crdt
    }

    /// The state of replica `r`.
    pub fn state(&self, r: ReplicaId) -> &C::State {
        &self.replicas[r.0 as usize].state
    }

    /// The history recorded so far.
    pub fn history(&self) -> &History<C::Label> {
        &self.history
    }

    /// Consumes the cluster, returning its history.
    pub fn into_history(self) -> History<C::Label> {
        self.history
    }

    /// The set of operations replica `r` has performed or merged in.
    pub fn seen(&self, r: ReplicaId) -> &BitSet {
        self.replicas[r.0 as usize].member.seen()
    }

    /// The set of operations reflected in snapshot message `msg`.
    pub fn message_seen(&self, msg: usize) -> &BitSet {
        &self.messages[msg].seen
    }

    /// Invokes `call` at replica `r`; returns `None` if refused.
    ///
    /// The invocation is written ahead: a successful call immediately
    /// re-checkpoints the replica's durable state, so a later
    /// [`StateCluster::crash`] never loses locally performed operations.
    ///
    /// # Panics
    ///
    /// Panics if the replica is crashed.
    pub fn invoke(&mut self, r: ReplicaId, call: C::Call) -> Option<Invoked<C::Ret>> {
        let idx = r.0 as usize;
        let node = &self.replicas[idx];
        node.member.expect_up("invoke at", r);
        let mut ctx = GenCtx::new(r, node.clock, self.next_uid);
        match self.crdt.invoke(&node.state, &call, &mut ctx) {
            StateOutcome::Refused => None,
            StateOutcome::Done { ret, next } => {
                let label = self.crdt.label(&call, &ret);
                let record = match ctx.issued_ts() {
                    Some(ts) => OpRecord::with_ts(label, r, ts),
                    None => OpRecord::new(label, r),
                };
                let node = &mut self.replicas[idx];
                let op = self.history.push_set(record, node.member.seen().clone());
                node.clock = ctx.clock();
                self.next_uid = ctx.uid_counter();
                node.state = next;
                node.member.observe(op);
                node.durable = (node.state.clone(), node.member.seen().clone(), node.clock);
                Some(Invoked { ret, op })
            }
        }
    }

    /// Snapshots replica `r`'s state into a message; returns the message id.
    ///
    /// # Panics
    ///
    /// Panics if the replica is crashed.
    pub fn send(&mut self, r: ReplicaId) -> usize {
        let node = &self.replicas[r.0 as usize];
        node.member.expect_up("send from", r);
        self.messages.push(Message {
            seen: node.member.seen().clone(),
            state: node.state.clone(),
            clock: node.clock,
            origin: r,
        });
        self.messages.len() - 1
    }

    /// The replica whose snapshot message `msg` carries.
    pub fn message_origin(&self, msg: usize) -> ReplicaId {
        self.messages[msg].origin
    }

    /// The state snapshot message `msg` carries (payload-size accounting).
    pub fn message_state(&self, msg: usize) -> &C::State {
        &self.messages[msg].state
    }

    /// Number of messages in flight (messages are never consumed — the
    /// network may duplicate them arbitrarily).
    pub fn n_messages(&self) -> usize {
        self.messages.len()
    }

    /// Applies message `msg` at replica `r` (merging states). May be called
    /// any number of times, in any order.
    ///
    /// # Panics
    ///
    /// Panics if the replica is crashed.
    pub fn apply(&mut self, r: ReplicaId, msg: usize) {
        let node = &mut self.replicas[r.0 as usize];
        node.member.expect_up("apply at", r);
        apply_message(&self.crdt, &self.messages[msg], node);
    }

    /// Broadcasts every replica's current state and applies all snapshots
    /// everywhere — one full synchronization round.
    ///
    /// Sends are sequential (message ids stay deterministic); the apply
    /// phase runs replica-parallel on the configured executor, each node
    /// merging the round's snapshots in message order.
    pub fn sync_all(&mut self) {
        let snapshot_start = self.messages.len();
        for r in 0..self.replicas.len() {
            self.send(ReplicaId(r as u32));
        }
        let crdt = &self.crdt;
        let round = &self.messages[snapshot_start..];
        let (merges, report) = exec::for_each_replica(&self.exec, &mut self.replicas, |i, node| {
            node.member.expect_up("apply at", ReplicaId(i as u32));
            for msg in round {
                apply_message(crdt, msg, node);
            }
            round.len() as u64
        });
        record_sync_obs(&merges, &report);
    }

    /// Returns `true` if all replicas hold the same state.
    pub fn converged(&self) -> bool {
        self.replicas.windows(2).all(|w| w[0].state == w[1].state)
    }

    /// Checks the lattice laws on the current replica states: merge is
    /// commutative, idempotent, an upper bound w.r.t. `leq`, and monotone.
    pub fn check_lattice_laws(&self) -> bool {
        let states: Vec<&C::State> = self.replicas.iter().map(|n| &n.state).collect();
        for a in &states {
            if self.crdt.merge(a, a) != **a {
                return false;
            }
            for b in &states {
                let ab = self.crdt.merge(a, b);
                let ba = self.crdt.merge(b, a);
                if ab != ba {
                    return false;
                }
                if !self.crdt.leq(a, &ab) || !self.crdt.leq(b, &ab) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether replica `r` is running (not crashed).
    pub fn is_up(&self, r: ReplicaId) -> bool {
        self.replicas[r.0 as usize].member.is_up()
    }

    /// Checkpoints replica `r`: its current state (including merged-in
    /// remote knowledge) becomes the durable state a crash recovers to.
    pub fn persist(&mut self, r: ReplicaId) {
        let node = &mut self.replicas[r.0 as usize];
        node.durable = (node.state.clone(), node.member.seen().clone(), node.clock);
    }

    /// Crashes replica `r`: the process halts and its volatile state is
    /// lost. On [`StateCluster::restart`] it recovers the last durable
    /// checkpoint and rejoins; anything lost was merge-derived and can be
    /// re-merged (the lattice makes recovery and message redelivery the
    /// same operation).
    pub fn crash(&mut self, r: ReplicaId) {
        let node = &mut self.replicas[r.0 as usize];
        node.member.crash();
        node.state = node.durable.0.clone();
        node.member.restore_seen(node.durable.1.clone());
        node.clock = node.durable.2;
    }

    /// Restarts a crashed replica from its durable checkpoint.
    pub fn restart(&mut self, r: ReplicaId) {
        self.replicas[r.0 as usize].member.restart();
    }

    /// Restarts every crashed replica.
    pub fn restart_all(&mut self) {
        for node in &mut self.replicas {
            node.member.restart();
        }
    }
}

/// Merges one snapshot message into one node — the core of both the
/// targeted [`StateCluster::apply`] and the parallel `sync_all` phase.
/// Mutates only `node`; the message log is read-only.
fn apply_message<C: StateBased>(crdt: &C, msg: &Message<C::State>, node: &mut StateNode<C::State>) {
    node.state = crdt.merge(&node.state, &msg.state);
    node.member.merge_seen(&msg.seen);
    node.clock = node.clock.max(msg.clock).max(crdt.clock_floor(&node.state));
}

/// Obs metrics for one `sync_all` round, emitted on the caller thread
/// after the executor joined.
fn record_sync_obs(merges: &[u64], report: &exec::ExecReport) {
    let total: u64 = merges.iter().sum();
    obs::observe("runtime.state.sync_batch", total);
    let mut start = 0;
    for (worker, &size) in report.shard_sizes.iter().enumerate() {
        let shard: u64 = merges[start..start + size].iter().sum();
        obs::counter_keyed("runtime.exec.worker_merges", worker as u64, shard);
        start += size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A grow-only set as a join semilattice.
    struct GSet;

    #[derive(Clone, Debug, PartialEq)]
    enum Call {
        Add(u32),
        Read,
    }

    impl StateBased for GSet {
        type State = Vec<u32>;
        type Call = Call;
        type Ret = Vec<u32>;
        type Label = Call;

        fn initial(&self, _n: usize) -> Vec<u32> {
            Vec::new()
        }

        fn invoke(
            &self,
            state: &Vec<u32>,
            call: &Call,
            _ctx: &mut GenCtx,
        ) -> StateOutcome<Vec<u32>, Vec<u32>> {
            match call {
                Call::Add(x) => {
                    let mut next = state.clone();
                    if !next.contains(x) {
                        next.push(*x);
                        next.sort_unstable();
                    }
                    StateOutcome::Done {
                        ret: Vec::new(),
                        next,
                    }
                }
                Call::Read => StateOutcome::Done {
                    ret: state.clone(),
                    next: state.clone(),
                },
            }
        }

        fn merge(&self, a: &Vec<u32>, b: &Vec<u32>) -> Vec<u32> {
            let mut out = a.clone();
            for x in b {
                if !out.contains(x) {
                    out.push(*x);
                }
            }
            out.sort_unstable();
            out
        }

        fn leq(&self, a: &Vec<u32>, b: &Vec<u32>) -> bool {
            a.iter().all(|x| b.contains(x))
        }

        fn label(&self, call: &Call, _ret: &Vec<u32>) -> Call {
            call.clone()
        }
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn local_updates_do_not_propagate() {
        let mut c = StateCluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        assert_eq!(c.state(r(0)), &vec![1]);
        assert_eq!(c.state(r(1)), &Vec::<u32>::new());
    }

    #[test]
    fn merge_propagates_and_is_idempotent() {
        let mut c = StateCluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        let m = c.send(r(0));
        c.apply(r(1), m);
        assert_eq!(c.state(r(1)), &vec![1]);
        // Duplicate application is harmless.
        c.apply(r(1), m);
        assert_eq!(c.state(r(1)), &vec![1]);
    }

    #[test]
    fn stale_messages_are_absorbed() {
        let mut c = StateCluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        let old = c.send(r(0));
        c.invoke(r(0), Call::Add(2)).unwrap();
        let new = c.send(r(0));
        // Out of order: newer snapshot first, stale one after.
        c.apply(r(1), new);
        c.apply(r(1), old);
        assert_eq!(c.state(r(1)), &vec![1, 2]);
    }

    #[test]
    fn sync_all_converges() {
        let mut c = StateCluster::new(GSet, 3);
        for i in 0..3 {
            c.invoke(r(i), Call::Add(i)).unwrap();
        }
        assert!(!c.converged());
        c.sync_all();
        assert!(c.converged());
        assert_eq!(c.state(r(0)), &vec![0, 1, 2]);
    }

    #[test]
    fn history_tracks_visibility_through_merges() {
        let mut c = StateCluster::new(GSet, 2);
        let a = c.invoke(r(0), Call::Add(1)).unwrap();
        let m = c.send(r(0));
        c.apply(r(1), m);
        let q = c.invoke(r(1), Call::Read).unwrap();
        assert_eq!(q.ret, vec![1]);
        assert!(c.history().sees(q.op, a.op));
    }

    #[test]
    fn lattice_laws_hold() {
        let mut c = StateCluster::new(GSet, 3);
        c.invoke(r(0), Call::Add(1)).unwrap();
        c.invoke(r(1), Call::Add(2)).unwrap();
        assert!(c.check_lattice_laws());
    }

    #[test]
    fn crash_loses_only_unpersisted_merges() {
        let mut c = StateCluster::new(GSet, 2);
        // Own invocations are written ahead…
        c.invoke(r(1), Call::Add(9)).unwrap();
        // …but a merged-in snapshot is volatile until the next checkpoint.
        c.invoke(r(0), Call::Add(1)).unwrap();
        let m = c.send(r(0));
        c.apply(r(1), m);
        assert_eq!(c.state(r(1)), &vec![1, 9]);
        c.crash(r(1));
        assert!(!c.is_up(r(1)));
        c.restart(r(1));
        assert_eq!(c.state(r(1)), &vec![9], "merge was lost with the crash");
        // Redelivery of the (never-consumed) message recovers it.
        c.apply(r(1), m);
        assert_eq!(c.state(r(1)), &vec![1, 9]);
        assert_eq!(c.message_origin(m), r(0));
    }

    #[test]
    fn persist_checkpoints_merged_knowledge() {
        let mut c = StateCluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        let m = c.send(r(0));
        c.apply(r(1), m);
        c.persist(r(1));
        c.crash(r(1));
        c.restart(r(1));
        assert_eq!(c.state(r(1)), &vec![1], "checkpoint survived the crash");
    }

    #[test]
    #[should_panic(expected = "cannot apply at crashed replica")]
    fn applying_at_crashed_replica_panics() {
        let mut c = StateCluster::new(GSet, 2);
        c.invoke(r(0), Call::Add(1)).unwrap();
        let m = c.send(r(0));
        c.crash(r(1));
        c.apply(r(1), m);
    }
}
