//! Several objects of one data type, replicated together: the object
//! compositions `⊗` and `⊗ts` of Section 5.
//!
//! The composed history records a *global* visibility relation — an
//! operation on object `o₁` delivered at replica `r` becomes visible to every
//! later operation issued at `r`, whatever its object — while **causal
//! delivery holds only per object** (Section 5.1). The difference between the
//! unrestricted composition `⊗` and the shared-timestamp composition `⊗ts`
//! (Figure 11) is whether replicas keep one Lamport clock per object or a
//! single clock spanning all of them.
//!
//! Replication plumbing is the shared delivery core ([`crate::mailbox`] +
//! [`crate::membership`]); per-object causal delivery is certified in O(1)
//! against the target's seen frontier, falling back to the cluster's
//! per-object op index only when the seen-set has holes.
//! [`MultiCluster::deliver_all`] drains each replica's mailbox in one
//! ascending pass, sharded across the configured [`exec`]
//! workers.

use crate::exec::{self, ExecConfig};
use crate::gen::{GenCtx, GenOutcome};
use crate::mailbox::{self, DeliveryRecord, DrainObs, DrainStats, Mailbox, Received};
use crate::membership::Member;
use crate::op_based::{Invoked, OpBased};
use ral_core::compose::ObjLabel;
use ral_core::history::{History, OpRecord};
use ral_core::ids::{ObjId, ReplicaId};
use ral_obs as obs;

/// Timestamp-generator sharing discipline for a composition of objects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TsMode {
    /// Unrestricted composition `⊗`: each object has its own timestamp
    /// generator, so timestamps of different objects may be inconsistent
    /// with the global visibility (Figure 10).
    PerObject,
    /// Shared-timestamp composition `⊗ts`: all objects of a replica share
    /// one generator, so every new timestamp exceeds all timestamps visible
    /// at the replica regardless of object (Figure 11).
    Shared,
}

#[derive(Clone)]
struct MultiNode<S> {
    states: Vec<S>,
    // Liveness + seen-set; composed replica state is durable, as in
    // [`crate::op_based::Cluster`].
    member: Member,
    clocks: Vec<u64>,
    mailbox: Mailbox,
}

/// Composed-transport record metadata: just the target object. The op's
/// *same-object* visibility predecessors are not materialized per record —
/// deliverability certifies them in O(1) against the target's seen
/// [`frontier`](Member::frontier) (every predecessor has a smaller id), and
/// only a replica whose seen-set has holes falls back to scanning the
/// cluster's per-object op index against the history's pred set.
#[derive(Clone, Debug)]
struct MultiMeta {
    obj: usize,
}

type MultiRecord<E> = DeliveryRecord<E, MultiMeta>;

/// A cluster replicating `n` objects of the same data type.
// Cloning forks the whole composed configuration — the branch point of
// `ral-analyze`'s timestamp-discipline search.
#[derive(Clone)]
pub struct MultiCluster<C: OpBased> {
    crdt: C,
    mode: TsMode,
    n_objects: usize,
    replicas: Vec<MultiNode<C::State>>,
    records: Vec<MultiRecord<C::Eff>>,
    // Per-object index of every op issued on that object, ascending — the
    // candidate pool the slow-path causal check scans (a hole-free replica
    // never touches it).
    obj_ops: Vec<Vec<usize>>,
    history: History<ObjLabel<C::Label>>,
    next_uid: u64,
    exec: ExecConfig,
}

const MULTI_DRAIN_OBS: DrainObs = DrainObs {
    depth: "runtime.multi.mailbox.depth",
    batch: "runtime.multi.mailbox.batch",
    per_worker: "runtime.exec.worker_deliveries",
};

impl<C: OpBased> MultiCluster<C> {
    /// Creates a cluster of `n_replicas` replicas, each holding `n_objects`
    /// objects, under the given timestamp discipline, with the executor
    /// `RAL_RUNTIME_THREADS` configures (sequential when unset).
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` or `n_objects` is zero.
    pub fn new(crdt: C, n_objects: usize, n_replicas: usize, mode: TsMode) -> Self {
        MultiCluster::with_exec(crdt, n_objects, n_replicas, mode, ExecConfig::from_env())
    }

    /// [`MultiCluster::new`] with an explicit executor configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n_replicas` or `n_objects` is zero.
    pub fn with_exec(
        crdt: C,
        n_objects: usize,
        n_replicas: usize,
        mode: TsMode,
        exec: ExecConfig,
    ) -> Self {
        assert!(n_replicas > 0, "a cluster needs at least one replica");
        assert!(n_objects > 0, "a composition needs at least one object");
        let clock_slots = match mode {
            TsMode::PerObject => n_objects,
            TsMode::Shared => 1,
        };
        let replicas = (0..n_replicas)
            .map(|_| MultiNode {
                states: (0..n_objects).map(|_| crdt.initial()).collect(),
                member: Member::new(),
                clocks: vec![0; clock_slots],
                mailbox: Mailbox::new(),
            })
            .collect();
        MultiCluster {
            crdt,
            mode,
            n_objects,
            replicas,
            records: Vec::new(),
            obj_ops: vec![Vec::new(); n_objects],
            history: History::new(),
            next_uid: 0,
            exec,
        }
    }

    /// Replaces the executor configuration (delivery semantics are
    /// executor-invariant; this changes only how drains are scheduled).
    pub fn set_exec(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// The executor configuration delivery drains run under.
    pub fn exec(&self) -> &ExecConfig {
        &self.exec
    }

    /// Number of composed objects.
    pub fn n_objects(&self) -> usize {
        self.n_objects
    }

    /// Number of replicas.
    pub fn n_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The timestamp discipline of this composition.
    pub fn mode(&self) -> TsMode {
        self.mode
    }

    /// The state of object `obj` at replica `r`.
    pub fn state(&self, r: ReplicaId, obj: ObjId) -> &C::State {
        &self.replicas[r.0 as usize].states[obj.0 as usize]
    }

    /// The composed history recorded so far (global visibility).
    pub fn history(&self) -> &History<ObjLabel<C::Label>> {
        &self.history
    }

    /// Consumes the cluster, returning its history.
    pub fn into_history(self) -> History<ObjLabel<C::Label>> {
        self.history
    }

    fn clock_slot(&self, obj: usize) -> usize {
        match self.mode {
            TsMode::PerObject => obj,
            TsMode::Shared => 0,
        }
    }

    /// Invokes `call` on object `obj` at replica `r`.
    ///
    /// Returns `None` if the generator refuses the call.
    pub fn invoke(&mut self, r: ReplicaId, obj: ObjId, call: C::Call) -> Option<Invoked<C::Ret>> {
        let idx = r.0 as usize;
        let o = obj.0 as usize;
        assert!(o < self.n_objects, "object {obj} out of range");
        let slot = self.clock_slot(o);
        let node = &self.replicas[idx];
        node.member.expect_up("invoke at", r);
        let mut ctx = GenCtx::new(r, node.clocks[slot], self.next_uid);
        match self.crdt.generator(&node.states[o], &call, &mut ctx) {
            GenOutcome::Refused => None,
            GenOutcome::Done { ret, eff } => {
                let label = ObjLabel::new(obj, self.crdt.label(&call, &ret));
                let record = match ctx.issued_ts() {
                    Some(ts) => OpRecord::with_ts(label, r, ts),
                    None => OpRecord::new(label, r),
                };
                let node = &mut self.replicas[idx];
                let op = self.history.push_set(record, node.member.seen().clone());
                node.clocks[slot] = ctx.clock();
                self.next_uid = ctx.uid_counter();
                if let Some(eff) = &eff {
                    self.crdt.apply(&mut node.states[o], eff);
                }
                node.member.observe(op);
                let clock = node.clocks[slot];
                // Appending to the shared pool IS the broadcast: every other
                // replica's mailbox cursor lies at or below the new id.
                self.obj_ops[o].push(op);
                self.records.push(DeliveryRecord {
                    op,
                    eff,
                    clock,
                    meta: MultiMeta { obj: o },
                });
                Some(Invoked { ret, op })
            }
        }
    }

    /// The history index of pending delivery `d`.
    pub fn delivery_op(&self, d: usize) -> usize {
        self.records[d].op
    }

    /// Total number of deliveries created so far (ids are `0..n`).
    pub fn n_deliveries(&self) -> usize {
        self.records.len()
    }

    /// Whether delivery `d` has already been applied at replica `r` —
    /// equivalently, whether its operation is in the replica's seen-set.
    pub fn is_delivered(&self, d: usize, r: ReplicaId) -> bool {
        self.replicas[r.0 as usize]
            .member
            .has_seen(self.records[d].op)
    }

    /// Non-panicking probe for [`MultiCluster::deliver`]: up, not yet
    /// applied, and per-object causal delivery admits it now.
    pub fn can_deliver(&self, r: ReplicaId, d: usize) -> bool {
        let node = &self.replicas[r.0 as usize];
        let rec = &self.records[d];
        node.member.is_up()
            && !node.member.has_seen(rec.op)
            && same_obj_deliverable::<C>(rec, &node.member, &self.history, &self.obj_ops)
    }

    /// Whether replica `r` is running (not crashed).
    pub fn is_up(&self, r: ReplicaId) -> bool {
        self.replicas[r.0 as usize].member.is_up()
    }

    /// Crashes replica `r` (durable composed state; processing halts).
    pub fn crash(&mut self, r: ReplicaId) {
        self.replicas[r.0 as usize].member.crash();
    }

    /// Restarts a crashed replica.
    pub fn restart(&mut self, r: ReplicaId) {
        self.replicas[r.0 as usize].member.restart();
    }

    /// Restarts every crashed replica.
    pub fn restart_all(&mut self) {
        for node in &mut self.replicas {
            node.member.restart();
        }
    }

    /// Pending deliveries applicable at replica `r`: causal delivery is
    /// required only among operations of the *same* object. Empty while the
    /// replica is crashed.
    pub fn deliverable(&self, r: ReplicaId) -> Vec<usize> {
        let mut out = Vec::new();
        self.deliverable_into(r, &mut out);
        out
    }

    /// [`MultiCluster::deliverable`] into a caller-owned scratch buffer
    /// (cleared first) — the allocation-free form the schedule drivers
    /// probe with on every delivery step.
    pub fn deliverable_into(&self, r: ReplicaId, out: &mut Vec<usize>) {
        out.clear();
        let node = &self.replicas[r.0 as usize];
        if !node.member.is_up() {
            return;
        }
        for d in node.mailbox.pending(self.records.len()) {
            let rec = &self.records[d];
            if !node.member.has_seen(rec.op)
                && same_obj_deliverable::<C>(rec, &node.member, &self.history, &self.obj_ops)
            {
                out.push(d);
            }
        }
    }

    /// Delivers pending effector `delivery` at replica `r`.
    ///
    /// # Panics
    ///
    /// Panics on double delivery or a per-object causal violation.
    pub fn deliver(&mut self, r: ReplicaId, delivery: usize) {
        let idx = r.0 as usize;
        let slot = self.clock_slot(self.records[delivery].meta.obj);
        let node = &mut self.replicas[idx];
        node.member.expect_up("deliver at", r);
        let rec = &self.records[delivery];
        assert!(
            !node.member.has_seen(rec.op),
            "effector of operation {} already applied at {r}",
            rec.op
        );
        assert!(
            same_obj_deliverable::<C>(rec, &node.member, &self.history, &self.obj_ops),
            "causal delivery violated for object o{} at {r}",
            rec.meta.obj
        );
        if let Some(eff) = &rec.eff {
            self.crdt.apply(&mut node.states[rec.meta.obj], eff);
        }
        node.clocks[slot] = node.clocks[slot].max(rec.clock);
        node.member.observe(rec.op);
    }

    /// Handles a network arrival of delivery `d` at replica `r` with causal
    /// holdback: duplicates are ignored, out-of-order (or crashed-target)
    /// arrivals are buffered in the replica's mailbox, and an in-order
    /// arrival is applied together with every held delivery it unblocks.
    pub fn receive(&mut self, r: ReplicaId, d: usize) -> Received {
        let idx = r.0 as usize;
        if self.is_delivered(d, r) {
            return Received::Ignored;
        }
        if !self.can_deliver(r, d) {
            self.replicas[idx].mailbox.hold(d);
            return Received::Held;
        }
        self.deliver(r, d);
        let mut applied = 1;
        let mut held = self.replicas[idx].mailbox.take_held();
        while let Some(pos) = held.iter().position(|&h| self.can_deliver(r, h)) {
            let h = held.swap_remove(pos);
            self.deliver(r, h);
            applied += 1;
        }
        self.replicas[idx].mailbox.restore_held(held);
        Received::Applied(applied)
    }

    /// Delivers every pending effector everywhere.
    ///
    /// Linear in the outstanding work: one pass per replica over its
    /// mailbox queue, in delivery-creation order, sharded across the
    /// configured executor. Ascending order is what makes a single pass
    /// complete — every same-object causal predecessor of a delivery was
    /// created earlier, so by the time a delivery is probed its
    /// predecessors have either originated at this replica or been applied
    /// earlier in the same pass. (The seed-era drain recomputed
    /// `deliverable` from the full delivery log until a fixpoint:
    /// O(d²·|preds|) probes on the 10⁴-delivery histories the `multi_mix`
    /// scenario produces.)
    pub fn deliver_all(&mut self) {
        self.deliver_all_counting();
    }

    /// [`MultiCluster::deliver_all`], returning the number of
    /// per-delivery deliverability probes performed — the regression hook
    /// pinning the drain's linearity (at most one probe per outstanding
    /// (delivery, replica) pair and per drain call). Deliberately not
    /// `pub`: the probe count is an implementation detail of the drain,
    /// not an API contract.
    fn deliver_all_counting(&mut self) -> u64 {
        let _span = obs::span("runtime.multi.drain");
        let total = self.records.len();
        let depth: usize = self.replicas.iter().map(|n| n.mailbox.depth(total)).sum();
        let crdt = &self.crdt;
        let records = &self.records;
        let history = &self.history;
        let obj_ops = &self.obj_ops;
        let mode = self.mode;
        let (stats, report) = exec::for_each_replica(&self.exec, &mut self.replicas, |_, node| {
            drain_node(crdt, records, history, obj_ops, mode, node)
        });
        let probes: u64 = stats.iter().map(|s| s.probes).sum();
        if probes > 0 {
            obs::counter("runtime.multi.probes", probes);
        }
        mailbox::record_drain(&MULTI_DRAIN_OBS, depth, &stats, &report);
        probes
    }

    /// Returns `true` if every object has converged across replicas.
    pub fn converged(&self) -> bool {
        (0..self.n_objects).all(|o| {
            self.replicas
                .windows(2)
                .all(|w| w[0].states[o] == w[1].states[o])
        })
    }
}

/// Per-object causal deliverability: every same-object predecessor applied.
///
/// Tiered: every predecessor of `rec.op` has a smaller id, so a member whose
/// seen [`frontier`](Member::frontier) has reached `rec.op` admits it in
/// O(1) — the only path a steady-state drain ever takes. A member with holes
/// above its frontier narrows `obj_ops` (all ops on this object, ascending)
/// to the candidates between frontier and `rec.op`, and only then consults
/// the history's exact pred set. Outcomes are identical on every tier.
fn same_obj_deliverable<C: OpBased>(
    rec: &MultiRecord<C::Eff>,
    member: &Member,
    history: &History<ObjLabel<C::Label>>,
    obj_ops: &[Vec<usize>],
) -> bool {
    if rec.op <= member.frontier() {
        return true;
    }
    let same_obj = &obj_ops[rec.meta.obj];
    let cut = same_obj.partition_point(|&p| p < rec.op);
    let lo = same_obj.partition_point(|&p| p < member.frontier());
    let candidates = &same_obj[lo..cut];
    if candidates.is_empty() {
        return true;
    }
    let preds = history.preds(rec.op);
    candidates
        .iter()
        .all(|&p| member.has_seen(p) || !preds.contains(p))
}

/// Drains one replica's mailbox: a single ascending pass under per-object
/// causal delivery, compacting survivors in place. Writes only `node`.
fn drain_node<C: OpBased>(
    crdt: &C,
    records: &[MultiRecord<C::Eff>],
    history: &History<ObjLabel<C::Label>>,
    obj_ops: &[Vec<usize>],
    mode: TsMode,
    node: &mut MultiNode<C::State>,
) -> DrainStats {
    let mut stats = DrainStats::default();
    if !node.member.is_up() {
        // Crashed replicas keep their backlog for after restart.
        return stats;
    }
    // Blocked backlog first, then the unexamined pool suffix — backlog ids
    // all precede the cursor, so the whole pass is ascending.
    let mut backlog = node.mailbox.take_backlog();
    let mut write = 0;
    for read in 0..backlog.len() {
        let d = backlog[read];
        let rec = &records[d];
        if node.member.has_seen(rec.op) {
            continue; // applied earlier through a targeted deliver
        }
        stats.probes += 1;
        if same_obj_deliverable::<C>(rec, &node.member, history, obj_ops) {
            apply_record(crdt, mode, node, rec);
            stats.applied += 1;
        } else {
            backlog[write] = d;
            write += 1;
        }
    }
    backlog.truncate(write);
    for (d, rec) in records.iter().enumerate().skip(node.mailbox.cursor()) {
        if node.member.has_seen(rec.op) {
            continue; // own operation, or applied through a targeted deliver
        }
        stats.probes += 1;
        if same_obj_deliverable::<C>(rec, &node.member, history, obj_ops) {
            apply_record(crdt, mode, node, rec);
            stats.applied += 1;
        } else {
            backlog.push(d);
        }
    }
    node.mailbox.advance_cursor(records.len());
    node.mailbox.restore_backlog(backlog);
    let member = &node.member;
    node.mailbox
        .prune_held(|&id| !member.has_seen(records[id].op));
    stats
}

/// Applies one admitted record at a node: effector, clock slot, seen-set.
fn apply_record<C: OpBased>(
    crdt: &C,
    mode: TsMode,
    node: &mut MultiNode<C::State>,
    rec: &MultiRecord<C::Eff>,
) {
    let slot = match mode {
        TsMode::PerObject => rec.meta.obj,
        TsMode::Shared => 0,
    };
    if let Some(eff) = &rec.eff {
        crdt.apply(&mut node.states[rec.meta.obj], eff);
    }
    node.clocks[slot] = node.clocks[slot].max(rec.clock);
    node.member.observe(rec.op);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecMode;
    use ral_core::timestamp::Ts;

    /// A register that stores the last written value with its timestamp.
    struct Reg;

    #[derive(Clone, Debug, PartialEq)]
    #[allow(dead_code)]
    enum Call {
        Write(u32),
        Read,
    }

    impl OpBased for Reg {
        type State = (u32, u64);
        type Call = Call;
        type Ret = u32;
        type Eff = (u32, Ts);
        type Label = Call;

        fn initial(&self) -> (u32, u64) {
            (0, 0)
        }

        fn generator(
            &self,
            state: &(u32, u64),
            call: &Call,
            ctx: &mut GenCtx,
        ) -> GenOutcome<u32, (u32, Ts)> {
            match call {
                Call::Write(v) => GenOutcome::update(0, (*v, ctx.fresh_ts())),
                Call::Read => GenOutcome::query(state.0),
            }
        }

        fn apply(&self, state: &mut (u32, u64), eff: &(u32, Ts)) {
            if state.1 < eff.1.counter {
                *state = (eff.0, eff.1.counter);
            }
        }

        fn label(&self, call: &Call, _ret: &u32) -> Call {
            call.clone()
        }
    }

    fn r(i: u32) -> ReplicaId {
        ReplicaId(i)
    }

    fn o(i: u32) -> ObjId {
        ObjId(i)
    }

    #[test]
    fn objects_are_independent() {
        let mut c = MultiCluster::new(Reg, 2, 2, TsMode::PerObject);
        c.invoke(r(0), o(0), Call::Write(5)).unwrap();
        assert_eq!(c.state(r(0), o(0)), &(5, 1));
        assert_eq!(c.state(r(0), o(1)), &(0, 0));
    }

    #[test]
    fn shared_mode_orders_timestamps_across_objects() {
        let mut c = MultiCluster::new(Reg, 2, 1, TsMode::Shared);
        let a = c.invoke(r(0), o(0), Call::Write(1)).unwrap();
        let b = c.invoke(r(0), o(1), Call::Write(2)).unwrap();
        let ts_a = c.history().op(a.op).ts.unwrap();
        let ts_b = c.history().op(b.op).ts.unwrap();
        assert!(ts_a < ts_b, "shared generator must be monotone");
    }

    #[test]
    fn per_object_mode_can_reuse_counters() {
        let mut c = MultiCluster::new(Reg, 2, 1, TsMode::PerObject);
        let a = c.invoke(r(0), o(0), Call::Write(1)).unwrap();
        let b = c.invoke(r(0), o(1), Call::Write(2)).unwrap();
        let ts_a = c.history().op(a.op).ts.unwrap();
        let ts_b = c.history().op(b.op).ts.unwrap();
        // Independent generators: both operations get counter 1.
        assert_eq!(ts_a.counter, ts_b.counter);
    }

    #[test]
    fn global_visibility_crosses_objects() {
        let mut c = MultiCluster::new(Reg, 2, 2, TsMode::Shared);
        let a = c.invoke(r(0), o(0), Call::Write(1)).unwrap();
        c.deliver_all();
        let b = c.invoke(r(1), o(1), Call::Write(2)).unwrap();
        assert!(c.history().sees(b.op, a.op));
    }

    #[test]
    fn causal_delivery_is_per_object() {
        let mut c = MultiCluster::new(Reg, 2, 2, TsMode::Shared);
        // r0 writes o0 then o1; the o1 write "sees" the o0 write globally,
        // but r1 may receive the o1 effector first.
        c.invoke(r(0), o(0), Call::Write(1)).unwrap();
        c.invoke(r(0), o(1), Call::Write(2)).unwrap();
        let ds = c.deliverable(r(1));
        assert_eq!(ds.len(), 2, "both effectors deliverable: different objects");
        c.deliver(r(1), ds[1]);
        c.deliver_all();
        assert!(c.converged());
    }

    #[test]
    fn convergence_across_objects() {
        let mut c = MultiCluster::new(Reg, 3, 3, TsMode::Shared);
        for i in 0..3 {
            c.invoke(r(i), o(i % 3), Call::Write(i + 10)).unwrap();
        }
        c.deliver_all();
        assert!(c.converged());
    }

    /// A last-writer-wins register with the full `(counter, replica)`
    /// timestamp tiebreak, so concurrent writes converge under *any*
    /// causal delivery order — what the drain-equivalence tests need.
    struct TsReg;

    impl OpBased for TsReg {
        type State = (u32, Option<Ts>);
        type Call = Call;
        type Ret = u32;
        type Eff = (u32, Ts);
        type Label = Call;

        fn initial(&self) -> Self::State {
            (0, None)
        }

        fn generator(
            &self,
            state: &Self::State,
            call: &Call,
            ctx: &mut GenCtx,
        ) -> GenOutcome<u32, (u32, Ts)> {
            match call {
                Call::Write(v) => GenOutcome::update(0, (*v, ctx.fresh_ts())),
                Call::Read => GenOutcome::query(state.0),
            }
        }

        fn apply(&self, state: &mut Self::State, eff: &(u32, Ts)) {
            if state.1.is_none_or(|t| t < eff.1) {
                *state = (eff.0, Some(eff.1));
            }
        }

        fn label(&self, call: &Call, _ret: &u32) -> Call {
            call.clone()
        }
    }

    /// The seed-era fixpoint drain, through the public per-delivery API:
    /// rescan `deliverable` until no pass makes progress. Kept as the
    /// behavioural oracle for the mailbox-based `deliver_all`.
    fn reference_drain<C: OpBased>(c: &mut MultiCluster<C>) {
        loop {
            let mut progress = false;
            for r in 0..c.n_replicas() {
                let r = ReplicaId(r as u32);
                for d in c.deliverable(r) {
                    c.deliver(r, d);
                    progress = true;
                }
            }
            if !progress {
                return;
            }
        }
    }

    #[test]
    fn deliver_all_matches_the_fixpoint_reference_drain() {
        // Same invocation stream into two clusters; one drains with the
        // mailbox-based deliver_all, the other with the seed-era
        // fixpoint rescan. History and every per-replica object state
        // must come out identical.
        let mut fast = MultiCluster::new(TsReg, 3, 4, TsMode::Shared);
        let mut slow = MultiCluster::new(TsReg, 3, 4, TsMode::Shared);
        for i in 0..300u32 {
            let (rep, obj) = (r(i % 4), o(i % 3));
            fast.invoke(rep, obj, Call::Write(i)).unwrap();
            slow.invoke(rep, obj, Call::Write(i)).unwrap();
            if i % 50 == 17 {
                // Interleave partial drains so pruning of already-applied
                // queue entries is exercised too.
                fast.deliver_all();
                reference_drain(&mut slow);
            }
        }
        fast.deliver_all();
        reference_drain(&mut slow);
        assert!(fast.converged() && slow.converged());
        assert_eq!(
            format!("{:?}", fast.history()),
            format!("{:?}", slow.history()),
            "drain strategy must not change the recorded history"
        );
        for rep in 0..4 {
            for obj in 0..3 {
                assert_eq!(
                    fast.state(r(rep), o(obj)),
                    slow.state(r(rep), o(obj)),
                    "state of o{obj}@r{rep} diverged between drains"
                );
            }
        }
    }

    #[test]
    fn ten_thousand_delivery_drain_is_linear_in_probes() {
        // 10⁴ deliveries outstanding at 3 peers each — the multi_mix
        // regime. The mailbox drain must probe each outstanding
        // (delivery, replica) pair exactly once: O(d) probes, where the
        // seed-era fixpoint rescan performed O(d²·|preds|) work.
        let mut c = MultiCluster::new(TsReg, 8, 4, TsMode::Shared);
        for i in 0..10_000u32 {
            c.invoke(r(i % 4), o(i % 8), Call::Write(i)).unwrap();
        }
        assert_eq!(c.n_deliveries(), 10_000);
        let outstanding = (c.n_deliveries() * (c.n_replicas() - 1)) as u64;
        let probes = c.deliver_all_counting();
        assert_eq!(
            probes, outstanding,
            "mailbox drain must probe each outstanding pair exactly once"
        );
        assert!(c.converged());
        // A drained cluster re-drains for free.
        assert_eq!(c.deliver_all_counting(), 0);
    }

    #[test]
    fn crash_buffers_deliveries_until_restart() {
        let mut c = MultiCluster::new(Reg, 2, 2, TsMode::Shared);
        c.crash(r(1));
        c.invoke(r(0), o(0), Call::Write(1)).unwrap();
        assert_eq!(c.n_deliveries(), 1);
        assert!(!c.can_deliver(r(1), 0));
        assert!(c.deliverable(r(1)).is_empty());
        c.deliver_all();
        assert!(!c.is_delivered(0, r(1)));
        c.restart_all();
        assert!(c.can_deliver(r(1), 0));
        c.deliver_all();
        assert!(c.converged());
    }

    #[test]
    fn parallel_drain_matches_sequential_byte_for_byte() {
        let run = |exec: ExecConfig| {
            let mut c = MultiCluster::with_exec(TsReg, 16, 10, TsMode::Shared, exec);
            for i in 0..400u32 {
                c.invoke(r(i % 10), o(i % 16), Call::Write(i)).unwrap();
                if i % 37 == 11 {
                    c.deliver_all();
                }
            }
            c.deliver_all();
            assert!(c.converged());
            format!("{:?}", c.into_history())
        };
        let baseline = run(ExecConfig::sequential());
        for exec in [
            ExecConfig::free(2),
            ExecConfig::free(8),
            ExecConfig {
                threads: 8,
                mode: ExecMode::Seeded(3),
            },
        ] {
            assert_eq!(run(exec), baseline, "{exec:?}: history drifted");
        }
    }
}
