//! The sharded delivery executor: replica-parallel drains, deterministic by
//! construction.
//!
//! Delivery in every transport decomposes into per-replica work whose
//! outcome depends only on the target replica's own node (seen-set, clock,
//! state, mailbox) and on shared **immutable** inputs (the record pool, the
//! history, inbound messages). [`for_each_replica`] exploits that: it
//! partitions a cluster's node slice into contiguous shards and runs one
//! scoped `std::thread` worker per shard. Since no worker writes anything
//! another worker reads, the result of a drain is a pure function of the
//! pre-drain configuration — histories, traces, and final states are
//! byte-identical at 1, 2, or 64 threads, whatever the OS makes of the
//! actual interleaving. The determinism suites assert this; the executor's
//! job is merely not to give them anything to find.
//!
//! [`ExecMode::Seeded`] additionally jitters the shard *boundaries* from a
//! seed, so replaying a run also replays its replica→worker assignment and
//! distinct seeds exercise distinct partitions — scheduler diversity for
//! tests, with provably invariant outcomes. [`ExecMode::Free`] uses the
//! plain even split.
//!
//! Thread count comes from `RAL_RUNTIME_THREADS` (via
//! [`ral_core::env::runtime_threads`]; `0`/unset = sequential on the caller
//! thread, no spawns) or an explicit [`ExecConfig`]. Tests and benches that
//! must not touch process environment can use [`override_threads`].

use ral_core::env;
use ral_core::rng::Rng;
use std::sync::atomic::{AtomicIsize, Ordering};

/// How the executor assigns replicas to workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Shard boundaries are jittered deterministically from the seed:
    /// replaying a seed replays the exact replica→worker assignment, and
    /// different seeds exercise different partitions. Outcomes are
    /// invariant either way — this buys schedule *diversity*, not schedule
    /// *dependence*.
    Seeded(u64),
    /// Plain even split (the production default).
    Free,
}

/// Executor configuration a cluster carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker thread count; `0` and `1` both mean sequential delivery on
    /// the calling thread (no spawns at all).
    pub threads: usize,
    /// Shard-assignment mode.
    pub mode: ExecMode,
}

impl ExecConfig {
    /// Sequential delivery on the calling thread — the compatibility
    /// default every cluster constructor starts from.
    pub fn sequential() -> Self {
        ExecConfig {
            threads: 1,
            mode: ExecMode::Free,
        }
    }

    /// A seeded parallel executor: `threads` workers, shard assignment
    /// derived from `seed`.
    pub fn seeded(threads: usize, seed: u64) -> Self {
        ExecConfig {
            threads,
            mode: ExecMode::Seeded(seed),
        }
    }

    /// A free-running parallel executor: `threads` workers, even split.
    pub fn free(threads: usize) -> Self {
        ExecConfig {
            threads,
            mode: ExecMode::Free,
        }
    }

    /// The executor `RAL_RUNTIME_THREADS` asks for (sequential when unset),
    /// unless a process-local [`override_threads`] is active.
    ///
    /// The request is capped at the machine's available parallelism:
    /// outcomes are thread-count invariant anyway, so oversubscribing buys
    /// no wall-clock and only costs scheduling churn. The explicit
    /// constructors ([`ExecConfig::free`], [`ExecConfig::seeded`]) stay
    /// exact — the determinism suites use them to force real multi-worker
    /// runs whatever the machine offers.
    ///
    /// # Panics
    ///
    /// Panics on an unparseable `RAL_RUNTIME_THREADS` value.
    pub fn from_env() -> Self {
        let requested = match thread_override() {
            Some(t) => t,
            None => env::runtime_threads(),
        };
        let cap = std::thread::available_parallelism().map_or(usize::MAX, |p| p.get());
        ExecConfig {
            threads: requested.min(cap),
            mode: ExecMode::Free,
        }
    }

    /// Workers actually used for `n` items: never more than `n`, never
    /// fewer than one.
    fn workers_for(&self, n: usize) -> usize {
        self.threads.max(1).min(n.max(1))
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::sequential()
    }
}

// Process-local thread-count override for ExecConfig::from_env: -1 = none.
// Tests and benches use this instead of mutating RAL_RUNTIME_THREADS, which
// would race across the parallel test harness.
static THREAD_OVERRIDE: AtomicIsize = AtomicIsize::new(-1);

/// Overrides (or, with `None`, clears the override of) the thread count
/// [`ExecConfig::from_env`] reports, process-wide. For tests and benches
/// that construct clusters through code paths they don't control;
/// preferable to `std::env::set_var`, which races under the parallel test
/// harness.
pub fn override_threads(threads: Option<usize>) {
    let raw = match threads {
        Some(t) => isize::try_from(t).expect("thread override out of range"),
        None => -1,
    };
    THREAD_OVERRIDE.store(raw, Ordering::SeqCst);
}

fn thread_override() -> Option<usize> {
    let raw = THREAD_OVERRIDE.load(Ordering::SeqCst);
    usize::try_from(raw).ok()
}

/// What one [`for_each_replica`] call actually did — realized-parallelism
/// telemetry. Flows into obs metrics and assertions only; results never
/// depend on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecReport {
    /// Shards (= workers) the call partitioned the items into.
    pub workers: usize,
    /// Distinct OS threads observed executing shards — the proof that the
    /// configured parallelism was realized, not just partitioned.
    pub engaged: usize,
    /// Items per shard, in item order (shards are contiguous ascending
    /// ranges, so `shard_sizes` also maps item index → worker).
    pub shard_sizes: Vec<usize>,
}

/// Item counts per shard: an even split in [`ExecMode::Free`], a
/// seed-jittered (but seed-deterministic) split in [`ExecMode::Seeded`].
/// Every shard stays non-empty and sizes always sum to `n`.
fn shard_sizes(n: usize, workers: usize, mode: ExecMode) -> Vec<usize> {
    let mut sizes = vec![n / workers; workers];
    for s in sizes.iter_mut().take(n % workers) {
        *s += 1;
    }
    if let ExecMode::Seeded(seed) = mode {
        // A fixed tweak keeps the shard RNG stream distinct from every
        // other consumer of the run seed.
        let mut rng = Rng::seed_from_u64(seed ^ 0x5EED_51AB_D15C_0DE5);
        for w in 0..workers.saturating_sub(1) {
            if sizes[w] > 1 {
                // Donate a random prefix of this shard's surplus rightward;
                // both shards stay non-empty.
                let give = rng.random_range(0..sizes[w]);
                sizes[w] -= give;
                sizes[w + 1] += give;
            }
        }
    }
    sizes
}

/// Runs `f(index, &mut items[index])` for every item, partitioned across
/// the configured workers, and returns the per-item results in item order
/// plus the [`ExecReport`].
///
/// `f` must confine its writes to the item it is handed (shared captures
/// are `&`-only, which the `Sync` bound enforces); under that contract the
/// results are identical at every thread count. With one worker (or one
/// item) everything runs inline on the caller thread — no spawns, no
/// overhead, byte-compatible with the historical sequential loops.
pub fn for_each_replica<T, R, F>(cfg: &ExecConfig, items: &mut [T], f: F) -> (Vec<R>, ExecReport)
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    let n = items.len();
    let workers = cfg.workers_for(n);
    if workers <= 1 {
        let results = items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        return (
            results,
            ExecReport {
                workers: 1,
                engaged: 1,
                shard_sizes: vec![n],
            },
        );
    }
    let sizes = shard_sizes(n, workers, cfg.mode);
    let mut shards = Vec::with_capacity(workers);
    let mut rest = items;
    let mut start = 0;
    for &size in &sizes {
        let (shard, tail) = rest.split_at_mut(size);
        shards.push((start, shard));
        start += size;
        rest = tail;
    }
    let f = &f;
    let mut results = Vec::with_capacity(n);
    let mut thread_ids: Vec<std::thread::ThreadId> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = shards
            .into_iter()
            .map(|(start, shard)| {
                scope.spawn(move || {
                    let out: Vec<R> = shard
                        .iter_mut()
                        .enumerate()
                        .map(|(i, t)| f(start + i, t))
                        .collect();
                    // Realized-parallelism telemetry only: the identity of
                    // the OS thread that ran this shard. It feeds
                    // ExecReport::engaged and obs gauges — never results.
                    (out, std::thread::current().id())
                })
            })
            .collect();
        // Joining in spawn order makes the flattened results (and any panic
        // the workers raise) deterministic regardless of completion order.
        for handle in handles {
            match handle.join() {
                Ok((out, tid)) => {
                    results.extend(out);
                    if !thread_ids.contains(&tid) {
                        thread_ids.push(tid);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let engaged = thread_ids.len();
    (
        results,
        ExecReport {
            workers,
            engaged,
            shard_sizes: sizes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_sum(cfg: &ExecConfig, n: usize) -> (Vec<u64>, ExecReport) {
        let mut items: Vec<u64> = (0..n as u64).collect();
        let (results, report) = for_each_replica(cfg, &mut items, |i, item| {
            *item += 1;
            *item * 10 + i as u64
        });
        assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
        (results, report)
    }

    #[test]
    fn sequential_path_never_spawns() {
        let (results, report) = run_sum(&ExecConfig::sequential(), 5);
        assert_eq!(report.workers, 1);
        assert_eq!(report.engaged, 1);
        assert_eq!(report.shard_sizes, vec![5]);
        assert_eq!(results.len(), 5);
    }

    #[test]
    fn results_are_identical_across_thread_counts_and_modes() {
        let (baseline, _) = run_sum(&ExecConfig::sequential(), 37);
        for cfg in [
            ExecConfig::free(2),
            ExecConfig::free(8),
            ExecConfig::seeded(8, 0),
            ExecConfig::seeded(8, 0xDEAD),
            ExecConfig::seeded(3, 7),
        ] {
            let (results, report) = run_sum(&cfg, 37);
            assert_eq!(results, baseline, "{cfg:?}: results drifted");
            assert_eq!(report.shard_sizes.iter().sum::<usize>(), 37);
            assert!(report.shard_sizes.iter().all(|&s| s > 0));
            assert_eq!(report.workers, report.shard_sizes.len());
        }
    }

    #[test]
    fn parallel_execution_engages_distinct_threads() {
        let (_, report) = run_sum(&ExecConfig::free(4), 32);
        assert_eq!(report.workers, 4);
        assert_eq!(
            report.engaged, 4,
            "each shard must run on its own OS thread"
        );
    }

    #[test]
    fn workers_never_exceed_items() {
        let (_, report) = run_sum(&ExecConfig::free(16), 3);
        assert_eq!(report.workers, 3);
        assert_eq!(report.shard_sizes, vec![1, 1, 1]);
    }

    #[test]
    fn seeded_sharding_replays_exactly() {
        assert_eq!(
            shard_sizes(50, 8, ExecMode::Seeded(42)),
            shard_sizes(50, 8, ExecMode::Seeded(42))
        );
        assert_eq!(
            shard_sizes(50, 8, ExecMode::Free),
            vec![7, 7, 6, 6, 6, 6, 6, 6]
        );
    }

    #[test]
    fn seeded_sharding_varies_with_the_seed() {
        let partitions: Vec<_> = (0..16)
            .map(|seed| shard_sizes(50, 8, ExecMode::Seeded(seed)))
            .collect();
        assert!(
            partitions.windows(2).any(|w| w[0] != w[1]),
            "16 consecutive seeds should not all shard identically"
        );
        for p in &partitions {
            assert_eq!(p.iter().sum::<usize>(), 50);
            assert!(p.iter().all(|&s| s > 0));
        }
    }

    #[test]
    fn worker_panics_propagate_with_their_message() {
        let caught = std::panic::catch_unwind(|| {
            let mut items = vec![0u8; 8];
            for_each_replica(&ExecConfig::free(4), &mut items, |i, _| {
                assert!(i != 5, "boom at item {i}");
            });
        });
        let payload = caught.expect_err("worker panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at item 5"), "payload was {msg:?}");
    }

    #[test]
    fn override_hook_beats_the_environment() {
        let cap = std::thread::available_parallelism().map_or(usize::MAX, |p| p.get());
        override_threads(Some(3));
        assert_eq!(ExecConfig::from_env().threads, 3.min(cap));
        override_threads(None);
        // Unset in the test environment ⇒ sequential.
        assert_eq!(
            ExecConfig::from_env().threads,
            ral_core::env::runtime_threads().min(cap)
        );
    }
}
