//! Per-replica membership bookkeeping shared by every transport.
//!
//! All four cluster kinds ([`Cluster`](crate::op_based::Cluster),
//! [`StateCluster`](crate::state_based::StateCluster),
//! [`DeltaCluster`](crate::delta::DeltaCluster),
//! [`MultiCluster`](crate::multi::MultiCluster)) used to keep their own copy
//! of the same two facts about a replica: *which operations it has applied*
//! (the seen-set that drives causal deliverability and history visibility)
//! and *whether its process is running* (crash/restart liveness). This module
//! extracts that pair into one [`Member`] value each transport embeds in its
//! node struct, so the crash semantics and the seen-set invariant — `seen`
//! grows monotonically, one insert per applied operation — live in exactly
//! one place.
//!
//! Clock discipline deliberately stays transport-specific: the op-based
//! cluster carries one Lamport clock, the composed cluster a vector of
//! per-slot clocks, and the state/delta transports checkpoint theirs into
//! durable storage. A [`Member`] is only liveness plus visibility.

use ral_core::bitset::BitSet;
use ral_core::ids::ReplicaId;

/// Liveness and visibility bookkeeping for one replica.
///
/// The seen-set is the ground truth for delivery state: an operation's
/// effector has been applied at this replica **iff** its history index is in
/// `seen` (origins insert at invoke time, receivers insert at delivery
/// time). Transports therefore need no per-record `delivered` flags — which
/// is what makes per-replica delivery drains embarrassingly parallel: a
/// drain reads shared immutable records and writes only its own `Member`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Member {
    seen: BitSet,
    /// First operation id *not* in `seen` — kept canonical (maximal) by
    /// every mutation, so it is a pure function of `seen` and the derived
    /// `PartialEq` stays consistent. Everything below the frontier is seen,
    /// which gives deliverability checks an O(1) fast path: an operation
    /// whose predecessors all lie below the frontier needs no set scan.
    frontier: usize,
    up: bool,
}

impl Member {
    /// A fresh, running member that has seen nothing.
    pub fn new() -> Self {
        Member {
            seen: BitSet::new(),
            frontier: 0,
            up: true,
        }
    }

    /// Whether the replica process is running (not crashed).
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Halts the replica: it refuses invocations, deliveries, and sends
    /// until [`Member::restart`]. Crashing never forgets — what survives a
    /// crash (everything for durable transports, a checkpoint for
    /// write-ahead ones) is the embedding transport's decision.
    pub fn crash(&mut self) {
        self.up = false;
    }

    /// Resumes a crashed replica.
    pub fn restart(&mut self) {
        self.up = true;
    }

    /// Panics with the transport's uniform liveness message when the
    /// replica is crashed. `action` is the verb phrase of the refused
    /// operation — `"invoke at"`, `"deliver at"`, `"apply at"`,
    /// `"send from"`, `"gossip at"`, `"ingest at"`.
    ///
    /// # Panics
    ///
    /// Panics iff the member is crashed.
    pub fn expect_up(&self, action: &str, r: ReplicaId) {
        assert!(self.up, "cannot {action} crashed replica {r}");
    }

    /// The set of operations applied at this replica.
    pub fn seen(&self) -> &BitSet {
        &self.seen
    }

    /// Whether operation `op` has been applied at this replica.
    pub fn has_seen(&self, op: usize) -> bool {
        op < self.frontier || self.seen.contains(op)
    }

    /// The contiguously-seen prefix: every operation with id below the
    /// returned value has been applied at this replica, and the operation
    /// *at* the returned id has not. Because operation ids ascend with
    /// creation order, `op <= frontier()` certifies that every causal
    /// predecessor of `op` (all of which have smaller ids) is seen —
    /// the constant-time deliverability fast path the drain hot loop takes
    /// on steady-state (hole-free) seen-sets.
    pub fn frontier(&self) -> usize {
        self.frontier
    }

    fn advance_frontier(&mut self) {
        while self.seen.contains(self.frontier) {
            self.frontier += 1;
        }
    }

    /// Records that operation `op` has been applied here.
    pub fn observe(&mut self, op: usize) {
        self.seen.insert(op);
        if op == self.frontier {
            self.advance_frontier();
        }
    }

    /// Merges another replica's seen-set into this one (state/delta
    /// transports propagate visibility wholesale with each message).
    pub fn merge_seen(&mut self, other: &BitSet) {
        self.seen.union_with(other);
        self.advance_frontier();
    }

    /// Replaces the seen-set wholesale — crash-recovery from a durable
    /// checkpoint.
    pub fn restore_seen(&mut self, seen: BitSet) {
        self.seen = seen;
        self.frontier = 0;
        self.advance_frontier();
    }
}

impl Default for Member {
    fn default() -> Self {
        Member::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_member_is_up_and_empty() {
        let m = Member::new();
        assert!(m.is_up());
        assert!(m.seen().is_empty());
        assert!(!m.has_seen(0));
    }

    #[test]
    fn observe_and_merge_grow_the_seen_set() {
        let mut a = Member::new();
        a.observe(3);
        assert!(a.has_seen(3));
        let mut b = Member::new();
        b.observe(5);
        a.merge_seen(b.seen());
        assert!(a.has_seen(3) && a.has_seen(5));
    }

    #[test]
    fn crash_restart_round_trips() {
        let mut m = Member::new();
        m.crash();
        assert!(!m.is_up());
        m.restart();
        assert!(m.is_up());
        m.expect_up("deliver at", ReplicaId(0));
    }

    #[test]
    #[should_panic(expected = "cannot invoke at crashed replica r2")]
    fn expect_up_panics_with_the_transport_message() {
        let mut m = Member::new();
        m.crash();
        m.expect_up("invoke at", ReplicaId(2));
    }

    #[test]
    fn restore_seen_replaces_wholesale() {
        let mut m = Member::new();
        m.observe(1);
        let mut checkpoint = BitSet::new();
        checkpoint.insert(9);
        m.restore_seen(checkpoint);
        assert!(!m.has_seen(1));
        assert!(m.has_seen(9));
    }

    /// The frontier is always the first unseen id — through out-of-order
    /// observes, merges, and wholesale restores.
    #[test]
    fn frontier_is_canonical_first_unseen_id() {
        let mut m = Member::new();
        assert_eq!(m.frontier(), 0);
        m.observe(2); // hole at 0 and 1
        assert_eq!(m.frontier(), 0);
        m.observe(0);
        assert_eq!(m.frontier(), 1);
        m.observe(1); // closing the hole sweeps past the earlier observe
        assert_eq!(m.frontier(), 3);

        let mut other = BitSet::new();
        other.insert(3);
        other.insert(5);
        m.merge_seen(&other);
        assert_eq!(m.frontier(), 4);

        let mut checkpoint = BitSet::new();
        checkpoint.insert(0);
        checkpoint.insert(1);
        m.restore_seen(checkpoint);
        assert_eq!(m.frontier(), 2);
        assert!(m.has_seen(0) && m.has_seen(1) && !m.has_seen(2));
    }

    /// Members that saw the same operations compare equal regardless of the
    /// order they saw them in — the canonical frontier cannot split them.
    #[test]
    fn equal_seen_sets_compare_equal_whatever_the_observe_order() {
        let mut a = Member::new();
        let mut b = Member::new();
        for op in [0usize, 1, 2, 7] {
            a.observe(op);
        }
        for op in [7usize, 2, 0, 1] {
            b.observe(op);
        }
        assert_eq!(a, b);
        assert_eq!(a.frontier(), b.frontier());
    }
}
