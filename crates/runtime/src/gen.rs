//! The generator context: the services a generator may call while reading
//! the origin replica's state.
//!
//! The OPERATION rule of Figure 7 lets a generator sample a timestamp that is
//! strictly larger than every timestamp visible at the replica and globally
//! unique, and a unique identifier (`getUniqueIdentifier()` of Listing 2).
//! [`GenCtx`] provides both against a Lamport clock owned by the cluster;
//! nothing is committed until the cluster accepts the generator's outcome, so
//! a refused precondition consumes neither timestamps nor identifiers.

use ral_core::ids::{ReplicaId, Uid};
use ral_core::timestamp::Ts;

/// The result of running a generator at the origin replica.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenOutcome<R, E> {
    /// The operation executed: it returns `ret` and broadcasts `eff` (or
    /// nothing, for queries).
    Done {
        /// Return value `b` of the label `m(a) ⇒ b`.
        ret: R,
        /// The effector to apply at every replica; `None` for queries
        /// (identity effector).
        eff: Option<E>,
    },
    /// The generator's precondition does not hold at the replica; no
    /// operation happens.
    Refused,
}

impl<R, E> GenOutcome<R, E> {
    /// Builds a query outcome (no effector).
    pub fn query(ret: R) -> Self {
        GenOutcome::Done { ret, eff: None }
    }

    /// Builds an effectful outcome.
    pub fn update(ret: R, eff: E) -> Self {
        GenOutcome::Done {
            ret,
            eff: Some(eff),
        }
    }
}

/// Context handed to a generator: replica identity, timestamp sampling, and
/// unique-identifier sampling.
///
/// The context operates on *copies* of the cluster's clock and identifier
/// counters; the cluster commits them only when the generator completes, so
/// refusal has no side effects.
#[derive(Debug)]
pub struct GenCtx {
    replica: ReplicaId,
    clock: u64,
    uid: u64,
    issued_ts: Option<Ts>,
}

impl GenCtx {
    /// Creates a context for `replica` whose next timestamp will exceed
    /// `clock` and whose next identifier is `uid`.
    pub fn new(replica: ReplicaId, clock: u64, uid: u64) -> Self {
        GenCtx {
            replica,
            clock,
            uid,
            issued_ts: None,
        }
    }

    /// The replica executing the generator (`myRep()` in Listing 9).
    pub fn replica(&self) -> ReplicaId {
        self.replica
    }

    /// Samples a fresh timestamp, strictly larger than every timestamp
    /// visible at this replica and globally unique (Lamport pair).
    ///
    /// # Panics
    ///
    /// Panics if called twice: a label carries at most one timestamp.
    pub fn fresh_ts(&mut self) -> Ts {
        assert!(
            self.issued_ts.is_none(),
            "a generator may sample at most one timestamp"
        );
        self.clock += 1;
        let ts = Ts::new(self.clock, self.replica);
        self.issued_ts = Some(ts);
        ts
    }

    /// Samples a fresh unique identifier.
    pub fn fresh_uid(&mut self) -> Uid {
        let u = Uid(self.uid);
        self.uid += 1;
        u
    }

    /// The timestamp issued to this operation, if any (`⊥` otherwise).
    pub fn issued_ts(&self) -> Option<Ts> {
        self.issued_ts
    }

    /// The clock value to commit back to the cluster.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The identifier counter to commit back to the cluster.
    pub fn uid_counter(&self) -> u64 {
        self.uid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ts_exceeds_clock() {
        let mut ctx = GenCtx::new(ReplicaId(1), 5, 0);
        let ts = ctx.fresh_ts();
        assert_eq!(ts, Ts::new(6, ReplicaId(1)));
        assert_eq!(ctx.issued_ts(), Some(ts));
        assert_eq!(ctx.clock(), 6);
    }

    #[test]
    #[should_panic(expected = "at most one timestamp")]
    fn second_ts_panics() {
        let mut ctx = GenCtx::new(ReplicaId(0), 0, 0);
        ctx.fresh_ts();
        ctx.fresh_ts();
    }

    #[test]
    fn uids_are_sequential() {
        let mut ctx = GenCtx::new(ReplicaId(0), 0, 41);
        assert_eq!(ctx.fresh_uid(), Uid(41));
        assert_eq!(ctx.fresh_uid(), Uid(42));
        assert_eq!(ctx.uid_counter(), 43);
        assert_eq!(ctx.issued_ts(), None);
    }

    #[test]
    fn outcome_constructors() {
        let q: GenOutcome<i32, ()> = GenOutcome::query(7);
        assert_eq!(q, GenOutcome::Done { ret: 7, eff: None });
        let u: GenOutcome<i32, &str> = GenOutcome::update(1, "eff");
        assert_eq!(
            u,
            GenOutcome::Done {
                ret: 1,
                eff: Some("eff")
            }
        );
    }
}
