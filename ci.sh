#!/usr/bin/env bash
# Hermetic CI for the RA-linearizability workspace.
#
# Every step runs with networking disabled (--offline / CARGO_NET_OFFLINE):
# the workspace has zero external crate dependencies, so a clean checkout
# with an empty registry cache must pass all of this.
#
# Usage: ./ci.sh            # full gate
#        ./ci.sh quick      # skip the release build (local iteration)

set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true
export CARGO_TERM_COLOR="${CARGO_TERM_COLOR:-always}"

step() {
    echo
    echo "==> $*"
    "$@"
}

step cargo fmt --all -- --check
step cargo clippy --offline --workspace --all-targets -- -D warnings
# Docs are a checked contract: missing docs (under the crates'
# `#![warn(missing_docs)]`) and broken intra-doc links fail the gate.
step env RUSTDOCFLAGS="-D warnings" cargo doc --offline --no-deps
if [[ "${1:-}" != "quick" ]]; then
    step cargo build --offline --release
fi
step cargo build --offline --examples
step cargo test -q --offline
# Explicit sim-suite step: names the two scenario suites in CI output so a
# regression there is immediately attributable (the plain run above already
# executes them; this re-run costs ~2s).
step cargo test -q --offline --test sim_determinism --test sim_faults
step cargo bench --offline --no-run
# Checker-throughput smoke: run the brute-vs-memo-vs-parallel scaling bench
# in quick mode and persist its JSON so the bench trajectory
# (BENCH_checker_scaling.json) tracks checker throughput per commit. The
# bench asserts every outcome (witness/refutation/budget), so a checker
# regression fails this step outright.
# (the bench binary runs from the package dir, so pass an absolute path)
step cargo bench --offline --bench checker_scaling -- --quick --save "$PWD/BENCH_checker_scaling.json"
# Compositional-checker smoke: sharded vs monolithic memo on composed
# histories (objects × ops). The bench asserts every outcome, and the
# persisted BENCH_composed_scaling.json tracks the sharded speedup
# (monolithic/k ÷ sharded/k) per commit.
step cargo bench --offline --bench composed_scaling -- --quick --save "$PWD/BENCH_composed_scaling.json"
# Runtime-throughput smoke: mailbox-drain delivery rate on the 50×32
# multi_mix-class workload at 1 and 8 configured runtime threads. The
# bench asserts convergence of every run, and the persisted
# BENCH_runtime_throughput.json tracks delivered effectors/sec per commit
# (the benchmark name encodes the deterministic event count, so
# median_ns → events/sec needs no extra metadata).
step cargo bench --offline --bench runtime_throughput -- --quick --save "$PWD/BENCH_runtime_throughput.json"
# Streaming-monitor smoke: monitored ops/sec replaying churn histories of
# 1k/10k/100k operations. Every replay must end accepted and fully
# settled (the bench asserts both), and the printed peak live window /
# live configs pin the O(window) retention claim per commit via
# BENCH_monitor_streaming.json.
step cargo bench --offline --bench monitor_streaming -- --quick --save "$PWD/BENCH_monitor_streaming.json"
# Observability smoke: the traced multi_mix + sharded-search example with
# recording on. The example itself validates both JSON artifacts with the
# strict ral-obs parser before writing them, so a malformed trace fails
# this step; OBS_report.json persists the span/counter aggregates per
# commit (the full Perfetto trace stays local — it is tens of MB).
step env RAL_OBS=1 RAL_OBS_OUT="$PWD/OBS_trace.json" cargo run --offline --example observability
# Fuzz smoke: a fixed-seed coverage-guided campaign over every shipped
# family. Fails on any finding (the shrunk counterexample is printed) or
# if structural coverage drops below the 900-per-mille baseline; the
# campaign is deterministic per seed, so FUZZ_report.json is a stable
# per-commit artifact (modulo its wall_nanos field). The --broken run is
# the oracle's negative control: the deliberately broken fixtures must be
# caught and shrunk, or the step fails.
step cargo run --offline --release -p ral-fuzz -- --quick --seed 1 --min-coverage 900 --report "$PWD/FUZZ_report.json"
step cargo run --offline --release -p ral-fuzz -- --broken --seed 1 --runs 10 --no-report
# Static-analysis gate: bounded-exhaustive simulation-obligation checking
# over every shipped CRDT plus the workspace determinism lint. Exits
# non-zero on any undischarged obligation, unrefuted negative fixture, or
# lint hit, and persists the machine-readable verdicts per commit.
step cargo run --offline --release -p ral-analyze -- --report "$PWD/ANALYZE_report.json"

echo
echo "CI green: fmt, clippy, docs, build, examples, tests, benches, fuzz smoke, analyze gate all pass offline."
