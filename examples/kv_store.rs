//! A replicated key-value store as a composition of LWW registers — the
//! referential-integrity scenario of Section 7.
//!
//! Keys are independent CRDT objects; a client first creates a record, then
//! writes a pointer to it under another key. RA-linearizability's
//! composition respects that cross-object causality: every linearization of
//! the composed history orders the record's write before the pointer's, so
//! a specification-level reader never explains a dangling pointer. The
//! registers are timestamp-order objects, so the composition runs under the
//! shared timestamp generator `⊗ts` (Theorem 5.5).
//!
//! Run with `cargo run --example kv_store`.

use ral_core::compose::{check_composed, MultiObjSpec};
use ral_core::ids::{ObjId, ReplicaId};
use ral_core::ralin::Strategy;
use ral_crdts::op::lww_register::{LwwRegister, RegCall};
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_spec::register::RegSpec;

const USER_KEY: ObjId = ObjId(0); // "user:1"
const POST_KEY: ObjId = ObjId(1); // "post:7" — references user:1

fn main() {
    let (dc_a, dc_b) = (ReplicaId(0), ReplicaId(1));
    // One composition of two LWW registers, sharing a timestamp generator.
    let mut store = MultiCluster::new(LwwRegister::<&str>::new(), 2, 2, TsMode::Shared);

    // Data center A creates the user record, then publishes a post that
    // references it — program order, hence cross-object visibility.
    let user_write = store
        .invoke(dc_a, USER_KEY, RegCall::Write("alice — profile v1"))
        .unwrap()
        .op;
    let post_write = store
        .invoke(dc_a, POST_KEY, RegCall::Write("post by user:1"))
        .unwrap()
        .op;
    assert!(store.history().sees(post_write, user_write));

    // Data center B reads both keys after replication.
    store.deliver_all();
    assert!(store.converged());
    let post = store.invoke(dc_b, POST_KEY, RegCall::Read).unwrap();
    let user = store.invoke(dc_b, USER_KEY, RegCall::Read).unwrap();
    println!("dc-b reads {POST_KEY}: {:?}", post.ret);
    println!("dc-b reads {USER_KEY}: {:?}", user.ret);

    // Certify the composed history and inspect the witness: the record
    // precedes the pointer in the global linearization.
    let h = store.into_history();
    let spec = MultiObjSpec::new(RegSpec::new(), 2);
    let lin = check_composed(&h, &spec, Strategy::TimestampOrder)
        .expect("⊗ts composition of LWW registers is RA-linearizable");
    let pos = |op: usize| lin.order.iter().position(|&x| x == op).unwrap();
    assert!(
        pos(user_write) < pos(post_write),
        "referential integrity: the record is linearized before the pointer"
    );
    println!(
        "witness order: user write at {}, post write at {} — no dangling reference",
        pos(user_write),
        pos(post_write)
    );

    // The same story under concurrent edits from the other data center:
    // timestamps resolve the conflict identically everywhere.
    let mut store = MultiCluster::new(LwwRegister::<&str>::new(), 2, 2, TsMode::Shared);
    store
        .invoke(dc_a, USER_KEY, RegCall::Write("alice v1"))
        .unwrap();
    store
        .invoke(dc_b, USER_KEY, RegCall::Write("alice v2"))
        .unwrap();
    store.deliver_all();
    assert!(store.converged());
    let winner = store.invoke(dc_a, USER_KEY, RegCall::Read).unwrap();
    println!("concurrent profile edits converge to {:?}", winner.ret);
    let h = store.into_history();
    check_composed(
        &h,
        &MultiObjSpec::new(RegSpec::new(), 2),
        Strategy::TimestampOrder,
    )
    .expect("conflicting-edit history is RA-linearizable");
    println!("composed store certified RA-linearizable");
}
