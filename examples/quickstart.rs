//! Quickstart: replicate a counter and an OR-Set, record their histories,
//! and check RA-linearizability.
//!
//! Run with `cargo run --example quickstart`.

use ral_core::ids::ReplicaId;
use ral_core::label::Identity;
use ral_core::ralin::{ra_check, Strategy};
use ral_crdts::op::counter::{CounterCall, OpCounter};
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRet, OrSetRewrite};
use ral_runtime::op_based::Cluster;
use ral_spec::counter::CounterSpec;
use ral_spec::set::OrSetSpec;

fn main() {
    let r0 = ReplicaId(0);
    let r1 = ReplicaId(1);

    // --- A replicated counter -------------------------------------------
    println!("== Counter ==");
    let mut counter = Cluster::new(OpCounter, 2);
    counter.invoke(r0, CounterCall::Inc);
    counter.invoke(r1, CounterCall::Inc);
    counter.invoke(r1, CounterCall::Dec);

    // Replicas haven't exchanged effectors yet: reads are stale but valid.
    let stale = counter.invoke(r0, CounterCall::Read).unwrap();
    println!("r0 reads before delivery: {:?}", stale.ret);

    counter.deliver_all();
    let fresh = counter.invoke(r0, CounterCall::Read).unwrap();
    println!("r0 reads after delivery:  {:?}", fresh.ret);
    assert!(counter.converged());

    // The recorded history is RA-linearizable in execution order.
    let history = counter.into_history();
    let lin = ra_check(&history, &Identity, &CounterSpec, Strategy::ExecutionOrder)
        .expect("counter histories linearize in execution order");
    println!(
        "history of {} operations linearizes as {:?}\n",
        history.len(),
        lin.order
    );

    // --- An observed-remove set -----------------------------------------
    println!("== OR-Set ==");
    let mut set = Cluster::new(OrSet::<&str>::new(), 2);
    set.invoke(r0, OrSetCall::Add("milk"));
    set.deliver_all();

    // r0 removes "milk" while r1 concurrently re-adds it: the add wins,
    // because its identifier was not observed by the remove.
    set.invoke(r0, OrSetCall::Remove("milk"));
    set.invoke(r1, OrSetCall::Add("milk"));
    set.deliver_all();

    let read = set.invoke(r0, OrSetCall::Read).unwrap();
    if let OrSetRet::Values(values) = &read.ret {
        println!("after concurrent remove/add: {values:?}");
        assert!(values.contains("milk"));
    }

    // The remove is a query-update; the γ-rewriting splits it before the
    // check (Definition 3.7).
    let history = set.into_history();
    ra_check(
        &history,
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
        Strategy::ExecutionOrder,
    )
    .expect("OR-Set histories linearize after the query-update rewriting");
    println!(
        "OR-Set history of {} operations is RA-linearizable",
        history.len()
    );
}
