//! Object composition: Figures 9 and 10, narrated.
//!
//! Execution-order objects (OR-Sets) compose unconditionally (Theorem 5.3);
//! timestamp-order objects (RGAs) compose only under a shared timestamp
//! generator `⊗ts` (Theorem 5.5) — with independent generators the Figure 10
//! history has *no* RA-linearization.
//!
//! Run with `cargo run --example composition`.

use ral_core::compose::{check_composed, MultiObjRewrite, MultiObjSpec};
use ral_core::ids::{ObjId, ReplicaId};
use ral_core::label::Identity;
use ral_core::ralin::{ra_search, Strategy};
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRewrite};
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_spec::rga::{Anchor, RgaSpec};
use ral_spec::set::OrSetSpec;

fn r(i: u32) -> ReplicaId {
    ReplicaId(i)
}

fn o(i: u32) -> ObjId {
    ObjId(i)
}

fn fig9_two_or_sets() {
    println!("== Figure 9: two OR-Sets compose (Theorem 5.3) ==");
    let mut c = MultiCluster::new(OrSet::<char>::new(), 2, 2, TsMode::PerObject);
    c.invoke(r(0), o(0), OrSetCall::Add('d')).unwrap();
    c.invoke(r(0), o(1), OrSetCall::Add('a')).unwrap();
    c.invoke(r(1), o(1), OrSetCall::Add('b')).unwrap();
    c.invoke(r(1), o(0), OrSetCall::Add('c')).unwrap();
    let h = c.into_history();
    let spec = MultiObjSpec::new(OrSetSpec::new(), 2);
    let rw = MultiObjRewrite::new(OrSetRewrite::new());
    let outcome = ral_core::ralin::ra_check(&h, &rw, &spec, Strategy::ExecutionOrder);
    println!(
        "composed OR-Set history: {}\n",
        if outcome.is_ok() {
            "RA-linearizable (execution order)"
        } else {
            "NOT RA-linearizable (?)"
        }
    );
    assert!(outcome.is_ok());
}

fn fig10_two_rgas(mode: TsMode) -> bool {
    let mut cl = MultiCluster::new(Rga::<char>::new(), 2, 3, mode);
    let c = cl
        .invoke(r(0), o(1), RgaCall::AddAfter(Anchor::Head, 'c'))
        .unwrap()
        .op;
    cl.invoke(r(1), o(0), RgaCall::AddAfter(Anchor::Head, 'b'))
        .unwrap();
    let dc = cl
        .deliverable(r(1))
        .into_iter()
        .find(|&d| cl.delivery_op(d) == c)
        .unwrap();
    cl.deliver(r(1), dc);
    let d = cl
        .invoke(r(1), o(1), RgaCall::AddAfter(Anchor::Head, 'd'))
        .unwrap()
        .op;
    let dd = cl
        .deliverable(r(0))
        .into_iter()
        .find(|&x| cl.delivery_op(x) == d)
        .unwrap();
    cl.deliver(r(0), dd);
    cl.invoke(r(0), o(1), RgaCall::AddAfter(Anchor::Head, 'e'))
        .unwrap();
    cl.invoke(r(0), o(0), RgaCall::AddAfter(Anchor::Head, 'a'))
        .unwrap();
    cl.deliver_all();
    cl.invoke(r(2), o(1), RgaCall::Read).unwrap();
    cl.invoke(r(2), o(0), RgaCall::Read).unwrap();
    let h = cl.into_history();
    let spec = MultiObjSpec::new(RgaSpec::new(), 2);
    match check_composed(&h, &spec, Strategy::TimestampOrder) {
        Ok(_) => true,
        Err(_) => {
            // Confirm with the complete search that no witness exists.
            assert!(
                ra_search(&h, &Identity, &spec).is_refuted(),
                "guided failure must coincide with genuine refutation here"
            );
            false
        }
    }
}

fn main() {
    fig9_two_or_sets();

    println!("== Figure 10: two RGAs under ⊗ (independent timestamps) ==");
    let ok = fig10_two_rgas(TsMode::PerObject);
    println!(
        "composed RGA history: {}\n",
        if ok {
            "RA-linearizable (?)"
        } else {
            "NOT RA-linearizable — timestamps of the two objects conflict"
        }
    );
    assert!(!ok);

    println!("== Figure 11: the same program under ⊗ts (shared generator) ==");
    let ok = fig10_two_rgas(TsMode::Shared);
    println!(
        "composed RGA history: {}",
        if ok {
            "RA-linearizable (timestamp order) — Theorem 5.5"
        } else {
            "NOT RA-linearizable (?)"
        }
    );
    assert!(ok);
}
