//! Collaborative text editing with RGA — the motivating workload of the
//! paper's introduction.
//!
//! Two authors edit the same document offline; RGA's timestamp trees
//! resolve their conflicting insertions identically on both devices, and
//! the whole session is certified RA-linearizable w.r.t. the sequential
//! list specification under timestamp order.
//!
//! Run with `cargo run --example collaborative_editing`.

use ral_core::ids::ReplicaId;
use ral_core::label::Identity;
use ral_core::ralin::{ra_check, Strategy};
use ral_crdts::op::rga::{Rga, RgaCall};
use ral_runtime::op_based::Cluster;
use ral_spec::rga::{Anchor, RgaSpec};

/// Types a word, character by character, after the given anchor.
fn type_word(doc: &mut Cluster<Rga<char>>, author: ReplicaId, mut after: Anchor<char>, word: &str) {
    for ch in word.chars() {
        doc.invoke(author, RgaCall::AddAfter(after.clone(), ch))
            .unwrap_or_else(|| panic!("character {ch:?} already present"));
        after = Anchor::Elem(ch);
    }
}

fn render(doc: &mut Cluster<Rga<char>>, at: ReplicaId) -> String {
    doc.invoke(at, RgaCall::Read)
        .unwrap()
        .ret
        .unwrap()
        .into_iter()
        .collect()
}

fn main() {
    let alice = ReplicaId(0);
    let bob = ReplicaId(1);
    let mut doc = Cluster::new(Rga::<char>::new(), 2);

    // Alice drafts the headline while online.
    type_word(&mut doc, alice, Anchor::Head, "crdt");
    doc.deliver_all();
    println!("shared draft:        {}", render(&mut doc, bob));

    // Offline: Alice prepends an article while Bob appends a plural 's'
    // and fixes the casing by retyping the 'c'.
    type_word(&mut doc, alice, Anchor::Head, "a_");
    doc.invoke(bob, RgaCall::AddAfter(Anchor::Elem('t'), 's'))
        .unwrap();
    doc.invoke(bob, RgaCall::Remove('c')).unwrap();
    doc.invoke(bob, RgaCall::AddAfter(Anchor::Head, 'C'))
        .unwrap();

    println!("alice offline view:  {}", render(&mut doc, alice));
    println!("bob offline view:    {}", render(&mut doc, bob));

    // Reconnect: both devices converge to the same document.
    doc.deliver_all();
    assert!(doc.converged());
    let merged = render(&mut doc, alice);
    assert_eq!(merged, render(&mut doc, bob));
    println!("merged document:     {merged}");

    // Every character of both edits survived, and tombstoned characters
    // stayed out.
    for ch in ['a', '_', 'C', 'r', 'd', 't', 's'] {
        assert!(merged.contains(ch), "lost character {ch:?}");
    }
    assert!(!merged.contains('c'), "removed character resurfaced");

    // Certify the editing session against the sequential specification.
    let history = doc.into_history();
    let lin = ra_check(
        &history,
        &Identity,
        &RgaSpec::new(),
        Strategy::TimestampOrder,
    )
    .expect("RGA sessions are RA-linearizable under timestamp order");
    println!(
        "session of {} operations certified; witness places operation {} first",
        history.len(),
        lin.order[0],
    );
}
