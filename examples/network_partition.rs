//! Availability under a network partition — the CAP scenario motivating
//! CRDTs (Section 1 of the paper).
//!
//! Two data centers are cut off from each other; both keep serving writes
//! and reads; on healing they reconcile without coordination, and the
//! session (partition included) is certified RA-linearizable.
//!
//! Run with `cargo run --example network_partition`.

use ral_core::ids::ReplicaId;
use ral_core::ralin::{ra_check, Strategy};
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRet, OrSetRewrite};
use ral_runtime::op_based::Cluster;
use ral_runtime::schedule::Partition;
use ral_spec::set::OrSetSpec;
use std::collections::BTreeSet;

fn read(c: &mut Cluster<OrSet<&'static str>>, at: ReplicaId) -> BTreeSet<&'static str> {
    match c.invoke(at, OrSetCall::Read).unwrap().ret {
        OrSetRet::Values(v) => v,
        _ => unreachable!(),
    }
}

fn main() {
    // Four replicas in two data centers: {0,1} on the west, {2,3} east.
    let partition = Partition::new(vec![0, 0, 1, 1]);
    let (w0, w1, e0, e1) = (ReplicaId(0), ReplicaId(1), ReplicaId(2), ReplicaId(3));
    let mut dns = Cluster::new(OrSet::<&str>::new(), 4);

    // Normal operation: a record replicated everywhere.
    dns.invoke(w0, OrSetCall::Add("api.example.com"));
    dns.deliver_all();
    println!("east view before the cut:  {:?}", read(&mut dns, e0));

    // --- the cable is cut ---
    // West renames the record; east adds a second one. Both sides keep
    // answering: no generator ever waits for a remote replica.
    dns.invoke(w0, OrSetCall::Remove("api.example.com"));
    dns.invoke(w1, OrSetCall::Add("api-v2.example.com"));
    dns.invoke(e0, OrSetCall::Add("cdn.example.com"));
    dns.invoke(e1, OrSetCall::Add("api.example.com")); // concurrent re-add!

    // Deliveries flow within each side only.
    for r in 0..4u32 {
        let at = ReplicaId(r);
        loop {
            let ds: Vec<usize> = dns
                .deliverable(at)
                .into_iter()
                .filter(|&d| {
                    let origin = dns.history().op(dns.delivery_op(d)).replica;
                    partition.connected(origin, at)
                })
                .collect();
            let Some(&d) = ds.first() else { break };
            dns.deliver(at, d);
        }
    }
    println!("west view during the cut:  {:?}", read(&mut dns, w0));
    println!("east view during the cut:  {:?}", read(&mut dns, e0));
    assert_ne!(read(&mut dns, w0), read(&mut dns, e0), "sides diverged");

    // --- the cable is repaired ---
    dns.deliver_all();
    assert!(dns.converged());
    let healed = read(&mut dns, w0);
    println!("all views after healing:   {healed:?}");
    // East's concurrent re-add survives the west's remove (observed-remove
    // semantics), and everything added anywhere is present.
    assert!(healed.contains("api.example.com"));
    assert!(healed.contains("api-v2.example.com"));
    assert!(healed.contains("cdn.example.com"));

    // The partition left no scar on correctness.
    let history = dns.into_history();
    ra_check(
        &history,
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
        Strategy::ExecutionOrder,
    )
    .expect("the partitioned session is RA-linearizable");
    println!(
        "session of {} operations certified RA-linearizable",
        history.len()
    );
}
