//! End-to-end observability: a traced simulation plus a profiled checker
//! run, exported as a Chrome trace-event / Perfetto JSON file.
//!
//! The `multi_mix` scenario (50 replicas × 32 composed counters, a
//! partition split and three crash bounces) runs under the deterministic
//! simulator with recording on, then the recorded composed history is
//! decided by the sharded compositional search. Everything the stack
//! emits — per-event sim spans, per-link delivery counters, checker
//! node/memo/prune counters — lands in one trace you can open at
//! <https://ui.perfetto.dev>.
//!
//! Recording is opt-in: run with
//!
//! ```text
//! RAL_OBS=1 RAL_OBS_OUT=OBS_trace.json cargo run --example observability
//! ```
//!
//! Without `RAL_OBS` the same workload runs with recording disabled (the
//! instrumented fast path), prints the checker statistics, and writes
//! nothing — so the example is also a smoke test of the inert path.

use ral_core::compose::{MultiObjRewrite, MultiObjSpec};
use ral_core::history::rewrite_history;
use ral_core::ids::ObjId;
use ral_core::label::Identity;
use ral_core::ralin::{search_sharded_with_threads_stats, SearchOutcome};
use ral_core::rng::Rng;
use ral_crdts::op::counter::OpCounter;
use ral_runtime::multi::{MultiCluster, TsMode};
use ral_sim::driver::{Driver, MultiDriver};
use ral_sim::scenario;
use ral_sim::sim;
use ral_spec::counter::CounterSpec;
use std::path::PathBuf;

const N_OBJECTS: usize = 32;
const SEED: u64 = 42;
const BUDGET: u64 = 5_000_000;

fn main() {
    let recording = ral_core::env::obs();
    if recording {
        ral_obs::reset();
        ral_obs::enable(ral_core::env::obs_capacity());
        println!("recording on (RAL_OBS set)");
    } else {
        println!("recording off — set RAL_OBS=1 to capture a trace");
    }

    // --- the traced simulation -------------------------------------------
    let sc = scenario::by_name("multi_mix").expect("named scenario");
    let cluster = MultiCluster::new(OpCounter, N_OBJECTS, sc.cfg.n_replicas, TsMode::Shared);
    let mut driver = MultiDriver::new(cluster, |rng: &mut Rng, _, _obj: ObjId, _| {
        Some(ral_verify::workloads::counter(rng))
    });
    let run = sim::run(&mut driver, &sc.cfg, SEED);
    assert!(driver.converged(), "multi_mix must converge");
    let history = driver.into_cluster().into_history();
    println!(
        "simulated `{}` (seed {SEED}): {} sends, {} applied, {} dropped, {} ops recorded",
        sc.name,
        run.stats.sends,
        run.stats.applied,
        run.stats.dropped,
        history.len()
    );

    // --- the profiled checker run ----------------------------------------
    let rewritten = rewrite_history(&history, &MultiObjRewrite::new(Identity));
    let spec = MultiObjSpec::new(CounterSpec, N_OBJECTS);
    let (outcome, stats) = search_sharded_with_threads_stats(
        &rewritten.history,
        &spec,
        BUDGET,
        ral_core::env::check_threads(),
    );
    match outcome {
        SearchOutcome::Linearizable(lin) => {
            println!(
                "sharded search: RA-linearizable ({} ops in witness)",
                lin.order.len()
            );
        }
        SearchOutcome::NotLinearizable => panic!("multi_mix history must linearize"),
        SearchOutcome::BudgetExhausted => panic!("search undecided within {BUDGET} nodes"),
    }
    println!(
        "  shards {} (fallback: {}), nodes expanded {}, memo hits {} ({:.1}% hit rate)",
        stats.shards,
        stats.fallback,
        stats.nodes_expanded,
        stats.memo_hits,
        stats.memo_hit_rate() * 100.0
    );
    for (cause, n) in stats.prune_causes() {
        println!("  pruned by {cause}: {n}");
    }

    // --- export ------------------------------------------------------------
    if !recording {
        return;
    }
    ral_obs::disable();
    let snapshot = ral_obs::drain();
    // The full summary has one row per (counter, link) pair — thousands on
    // a 50-replica mesh. Print a readable prefix; the JSON report carries
    // everything.
    let summary = ral_obs::summary::render_summary(&snapshot);
    const MAX_LINES: usize = 60;
    let total_lines = summary.lines().count();
    for line in summary.lines().take(MAX_LINES) {
        println!("{line}");
    }
    if total_lines > MAX_LINES {
        println!(
            "… ({} more summary lines in the JSON report)",
            total_lines - MAX_LINES
        );
    }

    let trace = ral_obs::perfetto::render_trace(&snapshot, &Default::default());
    ral_obs::json::validate(&trace).expect("trace must be valid JSON");
    let report = ral_obs::report::render_report(&snapshot);
    ral_obs::json::validate(&report).expect("report must be valid JSON");

    let trace_path = ral_core::env::obs_out().unwrap_or_else(|| PathBuf::from("OBS_trace.json"));
    let report_path = trace_path.with_file_name("OBS_report.json");
    std::fs::write(&trace_path, &trace).expect("write trace");
    std::fs::write(&report_path, &report).expect("write report");
    println!(
        "wrote {} ({} bytes) and {} ({} bytes) — open the trace at https://ui.perfetto.dev",
        trace_path.display(),
        trace.len(),
        report_path.display(),
        report.len()
    );
}
