//! Regenerates the paper's Figure 12: the table of CRDTs proved
//! RA-linearizable, with implementation style and linearization class.
//!
//! For each data type the harness discharges the paper's proof obligations
//! (Commutativity, Refinement/Refinement_ts, Prop1–Prop6) on random
//! reachable configurations and model-checks RA-linearizability on seeded
//! random histories.
//!
//! Run with `cargo run --release --example fig12_report`.

use ral_verify::{fig12_rows, render_fig12};

fn main() {
    let histories_per_type = 25;
    println!(
        "Verifying 9 CRDTs ({histories_per_type} random histories each) — \
         reproduction of Figure 12…\n"
    );
    let rows = fig12_rows(histories_per_type, 0xF1612);
    print!("{}", render_fig12(&rows));
    println!();
    for row in &rows {
        for obligation in &row.obligations {
            println!("  {:<18} {obligation}", row.name);
        }
    }
    let all_ok = rows.iter().all(|r| r.verified());
    println!(
        "\n{}",
        if all_ok {
            "All nine CRDTs verified — Figure 12 reproduced."
        } else {
            "VERIFICATION FAILED — see reports above."
        }
    );
    assert!(all_ok);
}
