//! Delta-state replication tour: the same lossy WAN scenario served by
//! full-state snapshots and by the delta transport.
//!
//! Runs the `delta_wan` scenario (20% drop, 15% duplication, a prolonged
//! 4|4 partition, a crash bounce) twice with an LWW-Element-Set — once
//! through `StateDriver` (whole-state snapshots, Appendix D.2) and once
//! through `DeltaDriver` (joined delta batches with ack-driven garbage
//! collection and full-state resync fallback) — then prints what each
//! transport paid in wire bytes and how the delta machinery coped.
//!
//! Run with `cargo run --offline --example delta_replication`.

use ra_linearizability::crdts::state::lww_element_set::{LwwElementSet, LwwSetState};
use ra_linearizability::runtime::delta::{DeltaConfig, DeltaCrdt};
use ra_linearizability::sim::driver::{DeltaDriver, Driver, StateDriver};
use ra_linearizability::sim::{scenario, sim};
use ra_linearizability::verify::workloads;

fn lww_state_bytes(s: &LwwSetState<u8>) -> usize {
    LwwElementSet::<u8>::new().state_bytes(s)
}

fn main() {
    let sc = scenario::delta_wan();
    let seed = 42;
    println!("scenario {}: {}\n", sc.name, sc.about);

    // Full-state replication: every gossip tick broadcasts the whole
    // payload — every (element, timestamp) pair ever written.
    let mut full = StateDriver::new(
        LwwElementSet::<u8>::new(),
        sc.cfg.n_replicas,
        |rng, _, _| Some(workloads::lww_element_set(rng)),
    )
    .with_sizer(lww_state_bytes);
    let full_run = sim::run(&mut full, &sc.cfg, seed);
    assert!(full.converged());
    println!(
        "full-state : {:>9} B on links over {} sends ({} dropped, {} duplicated)",
        full_run.stats.payload_bytes,
        full_run.stats.sends,
        full_run.stats.dropped,
        full_run.stats.duplicated
    );

    // Delta replication: gossip ships only the joined unacknowledged
    // mutations. The scheduled crash regresses one replica's applied
    // prefix, and the long partition starves acknowledgments — both end in
    // the full-state resync fallback, visible in the stats below.
    let mut delta = DeltaDriver::new(
        LwwElementSet::<u8>::new(),
        DeltaConfig::default(),
        sc.cfg.n_replicas,
        |rng, _, _| Some(workloads::lww_element_set(rng)),
    );
    let delta_run = sim::run(&mut delta, &sc.cfg, seed);
    assert!(delta.converged());
    let stats = delta.cluster().stats();
    println!(
        "delta      : {:>9} B on links over {} sends ({} dropped, {} duplicated)",
        delta_run.stats.payload_bytes,
        delta_run.stats.sends,
        delta_run.stats.dropped,
        delta_run.stats.duplicated
    );
    println!(
        "             {} delta batches, {} heartbeats, {} full-state resyncs, \
         {} buffer entries GC'd",
        stats.batches, stats.heartbeats, stats.resyncs, stats.gc_entries
    );
    println!(
        "\nboth transports converged; the delta transport shipped {:.1}x fewer payload bytes",
        full_run.stats.payload_bytes as f64 / delta_run.stats.payload_bytes.max(1) as f64
    );
    assert!(delta_run.stats.payload_bytes < full_run.stats.payload_bytes);
}
