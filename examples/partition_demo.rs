//! The `split_brain_heal` scenario end to end, through the discrete-event
//! simulator: two scheduled partitions cut a six-replica OR-Set cluster
//! apart while both sides keep writing; retransmission carries everything
//! across once the links heal; and the recorded history — partitions,
//! latency, retries and all — is certified RA-linearizable.
//!
//! Where `examples/network_partition.rs` stages one partition by hand,
//! this demo lets the simulator's virtual clock, per-link latency, and
//! fault schedule produce the run.
//!
//! Run with `cargo run --example partition_demo`.

use ral_core::ralin::ra_check;
use ral_core::rng::Rng;
use ral_crdts::op::or_set::{OrSet, OrSetRewrite};
use ral_sim::driver::{Driver, OpDriver};
use ral_sim::trace::TraceEvent;
use ral_sim::{scenario, sim};
use ral_spec::set::OrSetSpec;
use ral_verify::workloads;

fn main() {
    let sc = scenario::split_brain_heal();
    println!("scenario {}: {}", sc.name, sc.about);

    // Hold the final synchronization back so we can look at the cluster
    // the instant the active phase ends.
    let mut cfg = sc.cfg.clone();
    cfg.final_sync = false;

    let mut driver = OpDriver::new(OrSet::<u8>::new(), cfg.n_replicas, |rng: &mut Rng, _, _| {
        Some(workloads::or_set(rng))
    });
    let run = sim::run(&mut driver, &cfg, 2024);

    println!(
        "active phase: {} events to {}; {} invocations, {} point-to-point sends",
        run.stats.events, run.end, run.stats.invokes, run.stats.sends
    );
    println!(
        "the partitions forced {} retransmissions and {} causal holdbacks",
        run.stats.retried, run.stats.held
    );
    for (t, e) in run.trace.entries() {
        if matches!(
            e,
            TraceEvent::PartitionStart { .. } | TraceEvent::PartitionEnd { .. }
        ) {
            println!("  {t} {e:?}");
        }
    }
    assert!(run.stats.retried > 0, "the splits must actually cut links");
    println!(
        "replicas agree before the final sync: {}",
        driver.converged()
    );

    // Heal everything and let the transport finish its deliveries.
    driver.final_sync();
    assert!(driver.converged(), "healing reconciles every replica");
    println!("replicas agree after it:          {}", driver.converged());

    // The partitions left no scar on correctness (Section 1's promise).
    let history = driver.into_cluster().into_history();
    ra_check(
        &history,
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
        OrSet::<u8>::STRATEGY,
    )
    .expect("the partitioned session is RA-linearizable");
    println!(
        "history of {} operations certified RA-linearizable",
        history.len()
    );
}
