//! A replicated shopping cart on the OR-Set — the classic "Dynamo cart"
//! scenario, with the paper's client-reasoning example (Section 3.3) run
//! live.
//!
//! Run with `cargo run --example shopping_cart`.

use ral_core::ids::ReplicaId;
use ral_core::ralin::{ra_check, Strategy};
use ral_crdts::op::or_set::{OrSet, OrSetCall, OrSetRet, OrSetRewrite};
use ral_runtime::op_based::Cluster;
use ral_spec::set::OrSetSpec;
use std::collections::BTreeSet;

fn read(cart: &mut Cluster<OrSet<&'static str>>, at: ReplicaId) -> BTreeSet<&'static str> {
    match cart.invoke(at, OrSetCall::Read).unwrap().ret {
        OrSetRet::Values(v) => v,
        _ => unreachable!(),
    }
}

fn main() {
    let phone = ReplicaId(0);
    let laptop = ReplicaId(1);
    let mut cart = Cluster::new(OrSet::<&str>::new(), 2);

    // The customer shops on the phone…
    cart.invoke(phone, OrSetCall::Add("espresso beans"));
    cart.invoke(phone, OrSetCall::Add("grinder"));
    cart.deliver_all();
    println!("cart after phone session:   {:?}", read(&mut cart, laptop));

    // …then, on a train with no connectivity, removes the grinder on the
    // phone while re-adding it (with a different model in mind) on the
    // laptop.
    cart.invoke(phone, OrSetCall::Remove("grinder"));
    cart.invoke(laptop, OrSetCall::Add("grinder"));
    println!("phone sees (offline):       {:?}", read(&mut cart, phone));
    println!("laptop sees (offline):      {:?}", read(&mut cart, laptop));

    // Back online: adds win over concurrent removes — nothing the customer
    // put in the cart vanishes (the Dynamo anomaly resolved the safe way).
    cart.deliver_all();
    assert!(cart.converged());
    let merged = read(&mut cart, phone);
    println!("cart after reconnection:    {merged:?}");
    assert!(merged.contains("grinder"), "concurrent add must win");

    // The Section 3.3 postcondition, live: if the phone still sees an item
    // it removed, then the laptop must see it too.
    let x = read(&mut cart, phone);
    let y = read(&mut cart, laptop);
    assert!(
        !x.contains("grinder") || y.contains("grinder"),
        "a ∈ X ⇒ a ∈ Y"
    );

    // Certify the session.
    let history = cart.into_history();
    ra_check(
        &history,
        &OrSetRewrite::new(),
        &OrSetSpec::new(),
        Strategy::ExecutionOrder,
    )
    .expect("cart sessions are RA-linearizable");
    println!(
        "session of {} operations certified RA-linearizable",
        history.len()
    );
}
