#![warn(missing_docs)]
//! Facade crate for the RA-linearizability reproduction.
//!
//! Re-exports the workspace crates so examples and downstream users can
//! depend on a single package:
//!
//! * [`core`] — histories, specifications, and the RA-linearizability
//!   checker;
//! * [`runtime`] — the replicated execution substrate (op-based and
//!   state-based clusters, schedulers);
//! * [`spec`] — sequential specifications of all data types in the paper;
//! * [`crdts`] — the CRDT implementations (Figure 12);
//! * [`sim`] — the deterministic discrete-event network simulator
//!   (latency, partitions, crashes, topologies) and its scenario corpus;
//! * [`verify`] — the property-based verification harness (Commutativity,
//!   Refinement, Prop1–Prop6) and the Figure 12 report;
//! * [`obs`] — structured observability (spans, counters, histograms)
//!   with Chrome-trace/Perfetto export. See `examples/observability.rs`.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use ral_core as core;
pub use ral_crdts as crdts;
pub use ral_obs as obs;
pub use ral_runtime as runtime;
pub use ral_sim as sim;
pub use ral_spec as spec;
pub use ral_verify as verify;
